//! Incremental construction of [`Dfg`]s, including loop-carried feedback.
//!
//! Feedback (recurrence) edges reference values that have not been created
//! yet, so the builder offers *placeholders*: create one with
//! [`DfgBuilder::placeholder`], use it as an ordinary value, and later
//! [`bind`](DfgBuilder::bind) it to the real producer together with the
//! dependence distance.
//!
//! ```
//! use pipemap_ir::DfgBuilder;
//!
//! # fn main() -> Result<(), pipemap_ir::IrError> {
//! // acc = acc' + x, where acc' is acc from the previous iteration.
//! let mut b = DfgBuilder::new("accumulate");
//! let x = b.input("x", 16);
//! let acc_prev = b.placeholder(16);
//! let acc = b.add(x, acc_prev);
//! b.bind(acc_prev, acc, 1)?;
//! b.output("acc", acc);
//! let dfg = b.finish()?;
//! assert_eq!(dfg.stats().loop_carried_edges, 1);
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;

use crate::error::IrError;
use crate::graph::{Dfg, Memory, Node, NodeId, Port};
use crate::op::{CmpPred, MemId, Op};

/// Builder for [`Dfg`]s — see the module docs for feedback edges; every
/// other method appends one node and returns its id.
#[derive(Debug, Clone, Default)]
pub struct DfgBuilder {
    name: String,
    nodes: Vec<Node>,
    names: Vec<Option<String>>,
    memories: Vec<Memory>,
    init_values: HashMap<NodeId, u64>,
    /// placeholder id -> (width, binding (target node, added distance) if bound).
    ///
    /// Placeholder ids are *virtual*: they count down from `u32::MAX` so
    /// that real node ids stay stable when placeholders are resolved away.
    placeholders: HashMap<NodeId, (u32, Option<(NodeId, u32)>)>,
}

/// First virtual id; everything at or above this is a placeholder.
const VIRTUAL_BASE: u32 = u32::MAX - 0x00FF_FFFF;

impl DfgBuilder {
    /// Start building a graph with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        DfgBuilder {
            name: name.into(),
            ..DfgBuilder::default()
        }
    }

    fn push(&mut self, op: Op, width: u32, ins: Vec<Port>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { op, width, ins });
        self.names.push(None);
        id
    }

    /// Width of an already-created node or placeholder.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not created by this builder.
    pub fn width_of(&self, id: NodeId) -> u32 {
        if let Some(&(w, _)) = self.placeholders.get(&id) {
            w
        } else {
            self.nodes[id.index()].width
        }
    }

    /// Attach a debug name to a node (shows up in dumps and schedules).
    pub fn name_node(&mut self, id: NodeId, name: impl Into<String>) {
        self.names[id.index()] = Some(name.into());
    }

    /// Set the value loop-carried reads see for iterations before the
    /// first (default 0).
    pub fn set_init_value(&mut self, id: NodeId, value: u64) {
        self.init_values.insert(id, value);
    }

    /// Append a raw node without width checking (validation happens in
    /// [`finish`](Self::finish)). Intended for tests and generic tooling.
    pub fn raw_node(&mut self, op: Op, width: u32, ins: Vec<Port>) -> NodeId {
        self.push(op, width, ins)
    }

    // ---- sources & sinks -------------------------------------------------

    /// A named primary input of the given width.
    pub fn input(&mut self, name: impl Into<String>, width: u32) -> NodeId {
        let id = self.push(Op::Input, width, vec![]);
        self.names[id.index()] = Some(name.into());
        id
    }

    /// A constant of the given width (`value` is masked to the width on
    /// evaluation).
    pub fn const_(&mut self, value: u64, width: u32) -> NodeId {
        self.push(Op::Const(value), width, vec![])
    }

    /// Mark `value` as a primary output under `name`.
    pub fn output(&mut self, name: impl Into<String>, value: impl Into<Port>) -> NodeId {
        let p: Port = value.into();
        let w = self.width_of(p.node);
        let id = self.push(Op::Output, w, vec![p]);
        self.names[id.index()] = Some(name.into());
        id
    }

    // ---- bitwise ---------------------------------------------------------

    fn bin(&mut self, op: Op, a: impl Into<Port>, b: impl Into<Port>) -> NodeId {
        let (a, b) = (a.into(), b.into());
        let w = self.width_of(a.node);
        self.push(op, w, vec![a, b])
    }

    /// Bitwise AND.
    pub fn and(&mut self, a: impl Into<Port>, b: impl Into<Port>) -> NodeId {
        self.bin(Op::And, a, b)
    }

    /// Bitwise OR.
    pub fn or(&mut self, a: impl Into<Port>, b: impl Into<Port>) -> NodeId {
        self.bin(Op::Or, a, b)
    }

    /// Bitwise XOR.
    pub fn xor(&mut self, a: impl Into<Port>, b: impl Into<Port>) -> NodeId {
        self.bin(Op::Xor, a, b)
    }

    /// Bitwise NOT.
    pub fn not(&mut self, a: impl Into<Port>) -> NodeId {
        let a = a.into();
        let w = self.width_of(a.node);
        self.push(Op::Not, w, vec![a])
    }

    /// 2:1 multiplexer `sel ? a : b`; `sel` must be 1 bit wide.
    pub fn mux(&mut self, sel: impl Into<Port>, a: impl Into<Port>, b: impl Into<Port>) -> NodeId {
        let (sel, a, b) = (sel.into(), a.into(), b.into());
        let w = self.width_of(a.node);
        self.push(Op::Mux, w, vec![sel, a, b])
    }

    // ---- wiring ----------------------------------------------------------

    /// Left shift by a constant.
    pub fn shl(&mut self, a: impl Into<Port>, amount: u32) -> NodeId {
        let a = a.into();
        let w = self.width_of(a.node);
        self.push(Op::Shl(amount), w, vec![a])
    }

    /// Logical right shift by a constant.
    pub fn shr(&mut self, a: impl Into<Port>, amount: u32) -> NodeId {
        let a = a.into();
        let w = self.width_of(a.node);
        self.push(Op::Shr(amount), w, vec![a])
    }

    /// Extract `width` bits starting at bit `lo`.
    pub fn slice(&mut self, a: impl Into<Port>, lo: u32, width: u32) -> NodeId {
        self.push(Op::Slice { lo }, width, vec![a.into()])
    }

    /// Single-bit extraction, `a[bit]`.
    pub fn bit(&mut self, a: impl Into<Port>, bit: u32) -> NodeId {
        self.slice(a, bit, 1)
    }

    /// Concatenation `(hi << width(lo)) | lo`.
    pub fn concat(&mut self, hi: impl Into<Port>, lo: impl Into<Port>) -> NodeId {
        let (hi, lo) = (hi.into(), lo.into());
        let w = self.width_of(hi.node) + self.width_of(lo.node);
        self.push(Op::Concat, w, vec![hi, lo])
    }

    /// Zero-extend `a` to `width` bits (a concat with a zero constant).
    pub fn zext(&mut self, a: impl Into<Port>, width: u32) -> NodeId {
        let a = a.into();
        let aw = self.width_of(a.node);
        assert!(width >= aw, "zext target narrower than source");
        if width == aw {
            return a.node;
        }
        let z = self.const_(0, width - aw);
        self.push(Op::Concat, width, vec![z.into(), a])
    }

    // ---- arithmetic --------------------------------------------------------

    /// Wrapping addition.
    pub fn add(&mut self, a: impl Into<Port>, b: impl Into<Port>) -> NodeId {
        self.bin(Op::Add, a, b)
    }

    /// Wrapping subtraction `a - b`.
    pub fn sub(&mut self, a: impl Into<Port>, b: impl Into<Port>) -> NodeId {
        self.bin(Op::Sub, a, b)
    }

    /// Comparison with the given predicate; result is 1 bit.
    pub fn cmp(&mut self, pred: CmpPred, a: impl Into<Port>, b: impl Into<Port>) -> NodeId {
        self.push(Op::Cmp(pred), 1, vec![a.into(), b.into()])
    }

    /// Signed "is non-negative" test against zero — the paper's Fig. 2
    /// node *C* pattern whose bit-level dependence is the MSB alone.
    pub fn is_non_negative(&mut self, a: impl Into<Port>) -> NodeId {
        let a = a.into();
        let w = self.width_of(a.node);
        let z = self.const_(0, w);
        self.cmp(CmpPred::Sge, a, z)
    }

    // ---- black boxes -------------------------------------------------------

    /// Hard-multiplier product wrapping to `a`'s width.
    pub fn mul(&mut self, a: impl Into<Port>, b: impl Into<Port>) -> NodeId {
        self.bin(Op::Mul, a, b)
    }

    /// Register a read-only memory; returns its id for [`load`](Self::load).
    pub fn add_memory(&mut self, name: impl Into<String>, width: u32, data: Vec<u64>) -> MemId {
        let id = MemId(self.memories.len() as u32);
        self.memories.push(Memory {
            name: name.into(),
            width,
            data,
        });
        id
    }

    /// Memory read `mem[addr % len]`.
    pub fn load(&mut self, mem: MemId, addr: impl Into<Port>) -> NodeId {
        let w = self.memories[mem.0 as usize].width;
        self.push(Op::Load(mem), w, vec![addr.into()])
    }

    // ---- feedback ----------------------------------------------------------

    /// Create a placeholder value of the given width, to be bound later
    /// with [`bind`](Self::bind).
    ///
    /// Placeholder ids are virtual: they never appear in the finished graph
    /// and naming them or giving them init values is not supported.
    pub fn placeholder(&mut self, width: u32) -> NodeId {
        let id = NodeId(VIRTUAL_BASE + self.placeholders.len() as u32);
        self.placeholders.insert(id, (width, None));
        id
    }

    /// Bind `placeholder` to the real `producer`: every use of the
    /// placeholder becomes a use of `producer` with `dist` added to the
    /// edge's dependence distance. `dist >= 1` creates a loop-carried
    /// (recurrence) edge; `dist == 0` simply aliases the value.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::NotAPlaceholder`] if `placeholder` was not created
    /// by [`placeholder`](Self::placeholder) or was already bound.
    pub fn bind(
        &mut self,
        placeholder: NodeId,
        producer: NodeId,
        dist: u32,
    ) -> Result<(), IrError> {
        match self.placeholders.get_mut(&placeholder) {
            Some((_, slot @ None)) => {
                *slot = Some((producer, dist));
                Ok(())
            }
            _ => Err(IrError::NotAPlaceholder { node: placeholder }),
        }
    }

    /// Finish the graph: resolve placeholders, compact ids, validate.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::UnboundPlaceholder`] for unbound placeholders, or
    /// any validation error from [`Dfg::validate`].
    pub fn finish(self) -> Result<Dfg, IrError> {
        // Resolve each placeholder to a final (node, added dist), following
        // chains of placeholders bound to placeholders.
        let mut resolved: HashMap<NodeId, (NodeId, u32)> = HashMap::new();
        for (&ph, &(_, binding)) in &self.placeholders {
            let (mut tgt, mut dist) = match binding {
                Some(b) => b,
                None => return Err(IrError::UnboundPlaceholder { node: ph }),
            };
            let mut hops = 0;
            while let Some(&(_, next)) = self.placeholders.get(&tgt) {
                let (t2, d2) = match next {
                    Some(b) => b,
                    None => return Err(IrError::UnboundPlaceholder { node: tgt }),
                };
                tgt = t2;
                dist += d2;
                hops += 1;
                if hops > self.placeholders.len() {
                    // A cycle of placeholders can never produce a value.
                    return Err(IrError::CombinationalCycle { node: ph });
                }
            }
            resolved.insert(ph, (tgt, dist));
        }

        // Rewrite ports through the placeholder map. Node ids are stable:
        // placeholders are virtual and were never pushed as nodes.
        let mut nodes = self.nodes;
        for node in &mut nodes {
            for port in &mut node.ins {
                if let Some(&(tgt, extra)) = resolved.get(&port.node) {
                    port.node = tgt;
                    port.dist += extra;
                }
            }
        }

        let dfg = Dfg::from_parts(
            self.name,
            nodes,
            self.names,
            self.memories,
            self.init_values,
        );
        dfg.validate()?;
        Ok(dfg)
    }

    /// Finish the graph **without validation**, for static-analysis
    /// tooling that must represent broken graphs instead of rejecting
    /// them.
    ///
    /// Bound placeholders are resolved as in [`finish`](Self::finish);
    /// unbound (or cyclically bound) placeholders are left as dangling
    /// ports referencing their virtual ids, which `pipemap-verify`
    /// reports as out-of-graph operands. No invariant of
    /// [`Dfg::validate`] is checked.
    pub fn finish_lenient(self) -> Dfg {
        let mut resolved: HashMap<NodeId, (NodeId, u32)> = HashMap::new();
        for (&ph, &(_, binding)) in &self.placeholders {
            let Some((mut tgt, mut dist)) = binding else {
                continue;
            };
            let mut hops = 0;
            let mut ok = true;
            while let Some(&(_, next)) = self.placeholders.get(&tgt) {
                let Some((t2, d2)) = next else {
                    ok = false;
                    break;
                };
                tgt = t2;
                dist += d2;
                hops += 1;
                if hops > self.placeholders.len() {
                    ok = false;
                    break;
                }
            }
            if ok {
                resolved.insert(ph, (tgt, dist));
            }
        }
        let mut nodes = self.nodes;
        for node in &mut nodes {
            for port in &mut node.ins {
                if let Some(&(tgt, extra)) = resolved.get(&port.node) {
                    port.node = tgt;
                    port.dist += extra;
                }
            }
        }
        Dfg::from_parts(
            self.name,
            nodes,
            self.names,
            self.memories,
            self.init_values,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placeholder_chain_resolves() {
        let mut b = DfgBuilder::new("chain");
        let x = b.input("x", 8);
        let p1 = b.placeholder(8);
        let p2 = b.placeholder(8);
        let a = b.add(x, p2);
        b.bind(p2, p1, 1).expect("bind p2 -> p1");
        b.bind(p1, a, 1).expect("bind p1 -> a");
        b.output("o", a);
        let g = b.finish().expect("chain resolves");
        // a reads itself at distance 2 (1 + 1 through the chain).
        let (_, add) = g.iter().find(|(_, n)| n.op == Op::Add).expect("add exists");
        assert!(add.ins.iter().any(|p| p.dist == 2));
        // Placeholders are gone.
        assert_eq!(g.stats().inputs, 1);
    }

    #[test]
    fn unbound_placeholder_fails() {
        let mut b = DfgBuilder::new("bad");
        let x = b.input("x", 8);
        let p = b.placeholder(8);
        let a = b.xor(x, p);
        b.output("o", a);
        assert!(matches!(
            b.finish(),
            Err(IrError::UnboundPlaceholder { .. })
        ));
    }

    #[test]
    fn double_bind_fails() {
        let mut b = DfgBuilder::new("bad");
        let x = b.input("x", 8);
        let p = b.placeholder(8);
        b.bind(p, x, 1).expect("first bind works");
        assert!(matches!(
            b.bind(p, x, 1),
            Err(IrError::NotAPlaceholder { .. })
        ));
    }

    #[test]
    fn bind_non_placeholder_fails() {
        let mut b = DfgBuilder::new("bad");
        let x = b.input("x", 8);
        let y = b.input("y", 8);
        assert!(matches!(
            b.bind(x, y, 1),
            Err(IrError::NotAPlaceholder { .. })
        ));
    }

    #[test]
    fn placeholder_cycle_fails() {
        let mut b = DfgBuilder::new("bad");
        let p1 = b.placeholder(8);
        let p2 = b.placeholder(8);
        b.bind(p1, p2, 1).expect("bind");
        b.bind(p2, p1, 1).expect("bind");
        let x = b.input("x", 8);
        let a = b.xor(x, p1);
        b.output("o", a);
        assert!(matches!(
            b.finish(),
            Err(IrError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn zext_concats_zeros() {
        let mut b = DfgBuilder::new("z");
        let x = b.input("x", 3);
        let z = b.zext(x, 8);
        assert_eq!(b.width_of(z), 8);
        b.output("o", z);
        assert!(b.finish().is_ok());
    }

    #[test]
    fn memories_are_registered() {
        let mut b = DfgBuilder::new("rom");
        let m = b.add_memory("tbl", 8, vec![1, 2, 3]);
        let a = b.input("a", 4);
        let v = b.load(m, a);
        b.output("v", v);
        let g = b.finish().expect("valid");
        assert_eq!(g.memories().len(), 1);
        assert_eq!(g.memory(m).data, vec![1, 2, 3]);
        assert_eq!(g.stats().black_box_ops, 1);
    }
}
