//! FPGA device and delay model.
//!
//! The paper characterizes per-operation delays on the target device and
//! back-annotates them into the scheduler (§4). [`Target`] plays that role
//! here: it fixes the LUT input count *K*, the target clock period, and the
//! additive per-operation delays used by both the baseline scheduler and
//! the MILP's cycle-time constraints (Eqs. 8–9).
//!
//! The delay of a LUT-mappable operation doubles as the delay of the LUT it
//! becomes when it is a cut root: a single logic level is one LUT plus its
//! local routing, so `lut_delay + net_delay` is both "one logic op" and
//! "one mapped LUT" — exactly the equivalence Fig. 1 of the paper leans on
//! ("each logic operation or LUT incurs a 2 ns delay").

use crate::op::{MemId, Op};

/// Per-class additive operation delays in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpDelays {
    /// Constant shifts / slices / concats (pure wiring).
    pub wire: f64,
    /// Adder/subtractor base delay (carry-chain entry).
    pub add_base: f64,
    /// Adder/subtractor per-bit carry delay.
    pub add_per_bit: f64,
    /// Comparator base delay.
    pub cmp_base: f64,
    /// Comparator per-bit delay.
    pub cmp_per_bit: f64,
    /// Hard multiplier (DSP) delay.
    pub mul: f64,
    /// Memory (BRAM) read delay.
    pub mem: f64,
}

impl Default for OpDelays {
    fn default() -> Self {
        // Loosely modeled after a Xilinx 7-series at the paper's 10 ns
        // target: a logic level ~1.4 ns (the paper reports the HLS tool
        // assigning 1.37 ns to an XOR), fast carry chains, multi-ns DSP and
        // BRAM access times.
        OpDelays {
            wire: 0.0,
            add_base: 1.0,
            add_per_bit: 0.035,
            cmp_base: 0.9,
            cmp_per_bit: 0.025,
            mul: 6.0,
            mem: 2.5,
        }
    }
}

/// The target FPGA device model.
#[derive(Debug, Clone, PartialEq)]
pub struct Target {
    /// LUT input count *K* (the paper uses K ≤ 6; default 4 as in Fig. 1).
    pub k: u32,
    /// Intrinsic LUT delay in ns.
    pub lut_delay: f64,
    /// Local routing delay charged per logic level, in ns.
    pub net_delay: f64,
    /// Target clock period `T_cp` in ns (paper's experiments use 10 ns).
    pub t_cp: f64,
    /// Per-operation additive delays.
    pub delays: OpDelays,
    /// If set, every LUT-mappable op gets exactly this delay — used by the
    /// paper's Fig. 1 pedagogical model (uniform 2 ns).
    pub uniform_logic_delay: Option<f64>,
    /// Available hard multipliers (`None` = unlimited).
    pub mult_limit: Option<u32>,
    /// Read ports per memory per II window (dual-port BRAM default: 2).
    pub mem_ports: u32,
}

impl Default for Target {
    fn default() -> Self {
        Target {
            k: 4,
            lut_delay: 0.9,
            net_delay: 0.47,
            t_cp: 10.0,
            delays: OpDelays::default(),
            uniform_logic_delay: None,
            mult_limit: None,
            mem_ports: 2,
        }
    }
}

impl Target {
    /// The default 4-LUT device at the paper's 10 ns target period.
    pub fn new() -> Self {
        Target::default()
    }

    /// The pedagogical model of the paper's Fig. 1: 4-input LUTs, 5 ns
    /// target period, every logic operation or LUT costs exactly 2 ns.
    pub fn fig1() -> Self {
        Target {
            k: 4,
            lut_delay: 2.0,
            net_delay: 0.0,
            t_cp: 5.0,
            uniform_logic_delay: Some(2.0),
            ..Target::default()
        }
    }

    /// A 6-LUT variant of the default device.
    pub fn k6() -> Self {
        Target {
            k: 6,
            ..Target::default()
        }
    }

    /// Delay of one mapped LUT level (LUT + local net).
    pub fn lut_level_delay(&self) -> f64 {
        if let Some(u) = self.uniform_logic_delay {
            u
        } else {
            self.lut_delay + self.net_delay
        }
    }

    /// Characterized additive delay of `op` at the given output width, in
    /// ns. This is the `d_v` of the paper's Eqs. (8)–(10).
    pub fn op_delay(&self, op: &Op, width: u32) -> f64 {
        if let Some(u) = self.uniform_logic_delay {
            if op.is_lut_mappable() {
                return u;
            }
        }
        match op {
            Op::Input | Op::Const(_) | Op::Output => 0.0,
            Op::And | Op::Or | Op::Xor | Op::Not | Op::Mux => self.lut_level_delay(),
            Op::Shl(_) | Op::Shr(_) | Op::Slice { .. } | Op::Concat => self.delays.wire,
            Op::Add | Op::Sub => self.delays.add_base + self.delays.add_per_bit * width as f64,
            Op::Cmp(_) => self.delays.cmp_base + self.delays.cmp_per_bit * width as f64,
            Op::Mul => self.delays.mul,
            Op::Load(_) => self.delays.mem,
        }
    }

    /// Extra whole cycles an operation needs beyond its start cycle:
    /// `⌊d_v / T_cp⌋`, the latency term of the paper's Eq. (10).
    pub fn op_latency(&self, op: &Op, width: u32) -> u32 {
        let d = self.op_delay(&op.clone(), width);
        (d / self.t_cp).floor() as u32
    }

    /// Resource budget for a resource class (`None` = unlimited).
    pub fn resource_limit(&self, res: crate::op::Resource) -> Option<u32> {
        match res {
            crate::op::Resource::Mult => self.mult_limit,
            crate::op::Resource::MemPort(MemId(_)) => Some(self.mem_ports),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::CmpPred;

    #[test]
    fn default_logic_delay_matches_lut_level() {
        let t = Target::default();
        assert!((t.op_delay(&Op::Xor, 32) - t.lut_level_delay()).abs() < 1e-12);
        assert!(t.op_delay(&Op::Add, 32) > t.op_delay(&Op::Add, 8));
    }

    #[test]
    fn fig1_is_uniform_two_ns() {
        let t = Target::fig1();
        assert_eq!(t.t_cp, 5.0);
        for op in [Op::Xor, Op::Shr(1), Op::Cmp(CmpPred::Sge), Op::Mux, Op::Add] {
            assert_eq!(t.op_delay(&op, 2), 2.0, "{op}");
        }
        assert_eq!(t.op_delay(&Op::Input, 2), 0.0);
    }

    #[test]
    fn latency_floors_delay() {
        let mut t = Target::default();
        t.delays.mul = 25.0; // 2.5 cycles at 10ns
        assert_eq!(t.op_latency(&Op::Mul, 32), 2);
        assert_eq!(t.op_latency(&Op::Xor, 32), 0);
    }

    #[test]
    fn sources_are_free() {
        let t = Target::default();
        assert_eq!(t.op_delay(&Op::Const(3), 8), 0.0);
        assert_eq!(t.op_delay(&Op::Output, 8), 0.0);
    }
}
