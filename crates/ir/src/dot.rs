//! Graphviz (DOT) export of CDFGs — handy for debugging benchmark
//! generators and inspecting schedules.

use std::fmt::Write as _;

use crate::graph::{Dfg, NodeId};
use crate::op::Op;

/// Visual annotation for one node in [`to_dot_styled`].
///
/// Producers of analysis facts (for example the `analyze` crate) build
/// these without this crate having to know anything about lattices: the
/// style carries only what the renderer needs. The default style is the
/// plain `to_dot` appearance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeStyle {
    /// Fill color (e.g. `"#d8f2d0"`). `None` leaves the node unfilled
    /// unless a `cycle` callback colors it.
    pub fill: Option<String>,
    /// Extra line appended to the node label (e.g. a known-bits mask or
    /// `"dead"`). Escaped for DOT automatically.
    pub note: Option<String>,
    /// Render with a dashed border — used for nodes the simplifier may
    /// remove entirely (every output bit dead or constant).
    pub dashed: bool,
}

/// Render the graph in Graphviz DOT syntax.
///
/// Loop-carried edges are dashed and annotated with their distance;
/// sources, black boxes and outputs get distinct shapes. An optional
/// `cycle` callback colors nodes by pipeline stage.
pub fn to_dot(dfg: &Dfg, cycle: Option<&dyn Fn(NodeId) -> u32>) -> String {
    to_dot_styled(dfg, cycle, None)
}

/// [`to_dot`] with per-node visual annotations.
///
/// `style` (when present) is consulted for every node; it wins over the
/// `cycle` palette for the fill color so analysis shading survives when
/// both are requested.
pub fn to_dot_styled(
    dfg: &Dfg,
    cycle: Option<&dyn Fn(NodeId) -> u32>,
    style: Option<&dyn Fn(NodeId) -> NodeStyle>,
) -> String {
    const PALETTE: [&str; 6] = [
        "#cfe8ff", "#ffe2cc", "#d8f2d0", "#f2d0ef", "#fff3b0", "#d0d7f2",
    ];
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", dfg.name());
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [fontname=\"monospace\"];");
    for (id, node) in dfg.iter() {
        let shape = match node.op {
            Op::Input | Op::Const(_) => "ellipse",
            Op::Output => "doubleoctagon",
            ref op if op.is_black_box() => "box3d",
            _ => "box",
        };
        let s = style.map(|f| f(id)).unwrap_or_default();
        let mut label = format!(
            "{}\\n{} [{}]",
            dfg.label(id),
            node.op.mnemonic(),
            node.width
        );
        if let Some(note) = &s.note {
            let _ = write!(
                label,
                "\\n{}",
                note.replace('\\', "\\\\").replace('"', "\\\"")
            );
        }
        let mut attrs = format!("label=\"{label}\" shape={shape}");
        let fill = s
            .fill
            .clone()
            .or_else(|| cycle.map(|f| PALETTE[f(id) as usize % PALETTE.len()].to_string()));
        if let Some(fill) = fill {
            let _ = write!(attrs, " style=filled fillcolor=\"{fill}\"");
        }
        if s.dashed {
            let sep = if attrs.contains("style=filled") {
                // DOT accepts a comma-separated style list.
                attrs = attrs.replace("style=filled", "style=\"filled,dashed\"");
                false
            } else {
                true
            };
            if sep {
                let _ = write!(attrs, " style=dashed");
            }
        }
        let _ = writeln!(out, "  \"{id}\" [{attrs}];");
    }
    for (id, node) in dfg.iter() {
        for p in &node.ins {
            if p.dist == 0 {
                let _ = writeln!(out, "  \"{}\" -> \"{id}\";", p.node);
            } else {
                let _ = writeln!(
                    out,
                    "  \"{}\" -> \"{id}\" [style=dashed label=\"-{}\" constraint=false];",
                    p.node, p.dist
                );
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfgBuilder;

    #[test]
    fn dot_has_nodes_edges_and_loop_annotations() {
        let mut b = DfgBuilder::new("dot");
        let x = b.input("x", 4);
        let prev = b.placeholder(4);
        let a = b.add(x, prev);
        b.bind(prev, a, 2).expect("bind");
        b.output("o", a);
        let g = b.finish().expect("valid");
        let dot = to_dot(&g, None);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("label=\"-2\""));
        assert!(dot.trim_end().ends_with('}'));
        // One DOT node statement per graph node.
        assert_eq!(dot.matches("shape=").count(), g.len());
    }

    #[test]
    fn cycle_coloring_applies() {
        let mut b = DfgBuilder::new("c");
        let x = b.input("x", 4);
        let n = b.not(x);
        b.output("o", n);
        let g = b.finish().expect("valid");
        let dot = to_dot(&g, Some(&|v| v.0));
        assert!(dot.contains("fillcolor"));
    }

    #[test]
    fn styled_notes_fills_and_dashing_render() {
        let mut b = DfgBuilder::new("s");
        let x = b.input("x", 4);
        let n = b.not(x);
        b.output("o", n);
        let g = b.finish().expect("valid");
        let style = |v: NodeId| NodeStyle {
            fill: (v.index() == 1).then(|| "#eeeeee".to_string()),
            note: (v.index() == 1).then(|| "bits ??01".to_string()),
            dashed: v.index() == 1,
        };
        let dot = to_dot_styled(&g, None, Some(&style));
        assert!(dot.contains("bits ??01"));
        assert!(dot.contains("fillcolor=\"#eeeeee\""));
        assert!(dot.contains("style=\"filled,dashed\""));
        // Style fill wins over cycle palette.
        let dot2 = to_dot_styled(&g, Some(&|_| 0), Some(&style));
        assert!(dot2.contains("fillcolor=\"#eeeeee\""));
    }
}
