//! Graphviz (DOT) export of CDFGs — handy for debugging benchmark
//! generators and inspecting schedules.

use std::fmt::Write as _;

use crate::graph::{Dfg, NodeId};
use crate::op::Op;

/// Render the graph in Graphviz DOT syntax.
///
/// Loop-carried edges are dashed and annotated with their distance;
/// sources, black boxes and outputs get distinct shapes. An optional
/// `cycle` callback colors nodes by pipeline stage.
pub fn to_dot(dfg: &Dfg, cycle: Option<&dyn Fn(NodeId) -> u32>) -> String {
    const PALETTE: [&str; 6] = [
        "#cfe8ff", "#ffe2cc", "#d8f2d0", "#f2d0ef", "#fff3b0", "#d0d7f2",
    ];
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", dfg.name());
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [fontname=\"monospace\"];");
    for (id, node) in dfg.iter() {
        let shape = match node.op {
            Op::Input | Op::Const(_) => "ellipse",
            Op::Output => "doubleoctagon",
            ref op if op.is_black_box() => "box3d",
            _ => "box",
        };
        let mut attrs = format!(
            "label=\"{}\\n{} [{}]\" shape={shape}",
            dfg.label(id),
            node.op.mnemonic(),
            node.width
        );
        if let Some(f) = cycle {
            let c = f(id) as usize;
            let _ = write!(
                attrs,
                " style=filled fillcolor=\"{}\"",
                PALETTE[c % PALETTE.len()]
            );
        }
        let _ = writeln!(out, "  \"{id}\" [{attrs}];");
    }
    for (id, node) in dfg.iter() {
        for p in &node.ins {
            if p.dist == 0 {
                let _ = writeln!(out, "  \"{}\" -> \"{id}\";", p.node);
            } else {
                let _ = writeln!(
                    out,
                    "  \"{}\" -> \"{id}\" [style=dashed label=\"-{}\" constraint=false];",
                    p.node, p.dist
                );
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfgBuilder;

    #[test]
    fn dot_has_nodes_edges_and_loop_annotations() {
        let mut b = DfgBuilder::new("dot");
        let x = b.input("x", 4);
        let prev = b.placeholder(4);
        let a = b.add(x, prev);
        b.bind(prev, a, 2).expect("bind");
        b.output("o", a);
        let g = b.finish().expect("valid");
        let dot = to_dot(&g, None);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("label=\"-2\""));
        assert!(dot.trim_end().ends_with('}'));
        // One DOT node statement per graph node.
        assert_eq!(dot.matches("shape=").count(), g.len());
    }

    #[test]
    fn cycle_coloring_applies() {
        let mut b = DfgBuilder::new("c");
        let x = b.input("x", 4);
        let n = b.not(x);
        b.output("o", n);
        let g = b.finish().expect("valid");
        let dot = to_dot(&g, Some(&|v| v.0));
        assert!(dot.contains("fillcolor"));
    }
}
