//! Typed metrics registry: counters, gauges, and log-linear histograms.
//!
//! Mirrors the tracing half of this crate: every record call is guarded
//! by one relaxed atomic load ([`enabled`]), recorded data is never read
//! back by instrumented code, and disabling leaves previously recorded
//! values collectable. Metrics are process-global and shared across
//! threads; all mutation is relaxed-atomic **integer** arithmetic, so a
//! [`snapshot`] taken after workers join is independent of thread
//! interleaving — the property the solver's determinism tests pin.
//!
//! Handles are registered by name on first use and live for the process
//! lifetime. Lookup takes a registry lock: hot loops should hoist the
//! handle (`let h = metrics::histogram("lp.iters");`) out of the loop
//! rather than re-resolving per record.
//!
//! Histograms are log-linear: nine linear sub-buckets per power of ten,
//! spanning `1e-9 ..= 1e9` plus underflow/overflow buckets. The sum is
//! accumulated in fixed-point micro-units so that concurrent adds
//! commute exactly.
//!
//! Two expositions consume a [`MetricsSnapshot`]:
//! [`to_json`] (schema `pipemap-metrics-v1`, validated by
//! `trace-check`) and [`to_prometheus`] (text format 0.0.4, for the
//! future `pipemap serve` scrape endpoint).

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;

/// Schema identifier embedded in the JSON exposition.
pub const METRICS_SCHEMA: &str = "pipemap-metrics-v1";

static METRICS_ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn metric recording on (idempotent).
pub fn enable() {
    METRICS_ENABLED.store(true, Ordering::SeqCst);
}

/// Turn metric recording off. Recorded values stay collectable.
pub fn disable() {
    METRICS_ENABLED.store(false, Ordering::SeqCst);
}

/// Whether metric recording is on — one relaxed load, the entire cost
/// of a record call in disabled mode.
#[inline]
pub fn enabled() -> bool {
    METRICS_ENABLED.load(Ordering::Relaxed)
}

/// Monotone event count.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.v.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Last-written numeric value (single logical writer expected).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: f64) {
        if enabled() {
            self.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 before the first `set`).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Nine linear sub-buckets per decade over `1e-9 ..= 1e9`, plus one
/// underflow (index 0, covering `v < 1e-9` including zero/negative/NaN)
/// and one overflow bucket.
pub const HIST_BUCKETS: usize = 1 + 18 * 9 + 1;

const POW10: [f64; 19] = [
    1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7,
    1e8, 1e9,
];

/// Exclusive upper bound of bucket `i` (`f64::INFINITY` for the
/// overflow bucket).
pub fn bucket_upper_bound(i: usize) -> f64 {
    if i == 0 {
        return 1e-9;
    }
    if i >= HIST_BUCKETS - 1 {
        return f64::INFINITY;
    }
    let d = (i - 1) / 9;
    let sub = (i - 1) % 9 + 1;
    (sub as f64 + 1.0) * POW10[d]
}

fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v < 1e-9 {
        // NaN, negative, zero, or sub-range: underflow bucket.
        return 0;
    }
    if v >= 1e9 {
        return HIST_BUCKETS - 1;
    }
    let mut d = (v.log10().floor() as i32).clamp(-9, 8);
    // log10 rounds; nudge the decade so POW10[d] <= v < POW10[d+1].
    if v < POW10[(d + 9) as usize] {
        d -= 1;
    } else if d < 8 && v >= POW10[(d + 10) as usize] {
        d += 1;
    }
    let d = d.clamp(-9, 8);
    let sub = ((v / POW10[(d + 9) as usize]) as usize).clamp(1, 9);
    1 + (d + 9) as usize * 9 + (sub - 1)
}

/// Log-linear distribution of a nonnegative quantity (times, depths,
/// violation magnitudes). The sum is kept in fixed-point micro-units
/// (`round(v * 1e6)`), so concurrent records commute exactly and a
/// post-join snapshot is deterministic regardless of thread count.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum_micro: AtomicI64,
    buckets: Box<[AtomicU64]>,
}

impl Default for Histogram {
    fn default() -> Self {
        let buckets: Vec<AtomicU64> = (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            count: AtomicU64::new(0),
            sum_micro: AtomicI64::new(0),
            buckets: buckets.into_boxed_slice(),
        }
    }
}

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn record(&self, v: f64) {
        if !enabled() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // f64→i64 `as` saturates, so extreme values clamp instead of UB.
        self.sum_micro
            .fetch_add((v * 1e6).round() as i64, Ordering::Relaxed);
    }

    /// Freeze the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then_some((bucket_upper_bound(i), c))
            })
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum_micro.load(Ordering::Relaxed) as f64 / 1e6,
            buckets,
        }
    }
}

/// Frozen histogram state: total count, exact fixed-point sum, and the
/// nonempty buckets as `(exclusive upper bound, count)` pairs in
/// ascending bound order.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations (micro-unit fixed point, exact under merge).
    pub sum: f64,
    /// Nonempty buckets, ascending `(upper_bound, count)`.
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSnapshot {
    /// Fold another snapshot into this one. Counts add; the sums are
    /// integer multiples of 1e-6 so the addition is order-independent
    /// up to well past any realistic magnitude.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        let mut merged: Vec<(f64, u64)> = Vec::with_capacity(self.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ba, ca)), Some(&&(bb, cb))) => {
                    if ba == bb {
                        merged.push((ba, ca + cb));
                        a.next();
                        b.next();
                    } else if ba < bb {
                        merged.push((ba, ca));
                        a.next();
                    } else {
                        merged.push((bb, cb));
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(&&x)) => {
                    merged.push(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
    }
}

/// One registered metric's frozen value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotone count.
    Counter(u64),
    /// Last-written value.
    Gauge(f64),
    /// Distribution.
    Histogram(HistogramSnapshot),
}

/// A point-in-time copy of every registered metric, name-sorted.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs in ascending name order.
    pub metrics: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// Look a metric up by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.metrics[i].1)
    }

    /// `true` when no metric has been registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }
}

enum Handle {
    C(&'static Counter),
    G(&'static Gauge),
    H(&'static Histogram),
}

static REGISTRY: Mutex<Vec<(&'static str, Handle)>> = Mutex::new(Vec::new());

fn lookup<T>(
    name: &'static str,
    pick: impl Fn(&Handle) -> Option<&'static T>,
    make: impl FnOnce() -> Handle,
) -> &'static T {
    let mut reg = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
    if let Some((_, h)) = reg.iter().find(|(n, _)| *n == name) {
        return pick(h)
            .unwrap_or_else(|| panic!("metric {name:?} already registered with a different type"));
    }
    let h = make();
    let out = pick(&h).expect("freshly made handle matches its own type");
    reg.push((name, h));
    out
}

/// Register (or fetch) the counter called `name`.
pub fn counter(name: &'static str) -> &'static Counter {
    lookup(
        name,
        |h| match h {
            Handle::C(c) => Some(*c),
            _ => None,
        },
        || Handle::C(Box::leak(Box::default())),
    )
}

/// Register (or fetch) the gauge called `name`.
pub fn gauge(name: &'static str) -> &'static Gauge {
    lookup(
        name,
        |h| match h {
            Handle::G(g) => Some(*g),
            _ => None,
        },
        || Handle::G(Box::leak(Box::default())),
    )
}

/// Register (or fetch) the histogram called `name`.
pub fn histogram(name: &'static str) -> &'static Histogram {
    lookup(
        name,
        |h| match h {
            Handle::H(h) => Some(*h),
            _ => None,
        },
        || Handle::H(Box::leak(Box::default())),
    )
}

/// Freeze every registered metric. Call after worker threads joined;
/// the result is then deterministic for a deterministic workload.
pub fn snapshot() -> MetricsSnapshot {
    let reg = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
    let mut metrics: Vec<(String, MetricValue)> = reg
        .iter()
        .map(|(name, h)| {
            let v = match h {
                Handle::C(c) => MetricValue::Counter(c.get()),
                Handle::G(g) => MetricValue::Gauge(g.get()),
                Handle::H(h) => MetricValue::Histogram(h.snapshot()),
            };
            (name.to_string(), v)
        })
        .collect();
    metrics.sort_by(|a, b| a.0.cmp(&b.0));
    MetricsSnapshot { metrics }
}

/// Zero every registered metric (handles stay valid). Used between
/// solves so per-solve expositions don't accumulate.
pub fn reset() {
    let reg = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
    for (_, h) in reg.iter() {
        match h {
            Handle::C(c) => c.v.store(0, Ordering::Relaxed),
            Handle::G(g) => g.bits.store(0, Ordering::Relaxed),
            Handle::H(h) => {
                h.count.store(0, Ordering::Relaxed);
                h.sum_micro.store(0, Ordering::Relaxed);
                for b in h.buckets.iter() {
                    b.store(0, Ordering::Relaxed);
                }
            }
        }
    }
}

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_num(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// JSON exposition (schema `pipemap-metrics-v1`):
///
/// ```json
/// {"schema": "pipemap-metrics-v1",
///  "metrics": {
///    "milp.nodes": {"type": "counter", "value": 812},
///    "model.rows": {"type": "gauge", "value": 3511.0},
///    "lp.iters": {"type": "histogram", "count": 64, "sum": 4021.0,
///                  "buckets": [[10.0, 12], [100.0, 52]]}}}
/// ```
pub fn to_json(snap: &MetricsSnapshot) -> String {
    let mut out = String::from("{\"schema\": ");
    push_escaped(&mut out, METRICS_SCHEMA);
    out.push_str(", \"metrics\": {");
    for (i, (name, v)) in snap.metrics.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_escaped(&mut out, name);
        out.push_str(": ");
        match v {
            MetricValue::Counter(c) => {
                out.push_str(&format!("{{\"type\": \"counter\", \"value\": {c}}}"));
            }
            MetricValue::Gauge(g) => {
                out.push_str("{\"type\": \"gauge\", \"value\": ");
                push_num(&mut out, *g);
                out.push('}');
            }
            MetricValue::Histogram(h) => {
                out.push_str(&format!(
                    "{{\"type\": \"histogram\", \"count\": {}, \"sum\": ",
                    h.count
                ));
                push_num(&mut out, h.sum);
                out.push_str(", \"buckets\": [");
                for (j, (bound, c)) in h.buckets.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push('[');
                    if bound.is_finite() {
                        push_num(&mut out, *bound);
                    } else {
                        out.push_str("null");
                    }
                    out.push_str(&format!(", {c}]"));
                }
                out.push_str("]}");
            }
        }
    }
    out.push_str("}}\n");
    out
}

fn prom_name(name: &str) -> String {
    let mut s = String::with_capacity(name.len() + 8);
    s.push_str("pipemap_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            s.push(c);
        } else {
            s.push('_');
        }
    }
    s
}

fn prom_num(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else {
        format!("{v}")
    }
}

/// Prometheus text-format (0.0.4) exposition. Metric names are
/// prefixed `pipemap_` with non-alphanumerics mapped to `_`; histogram
/// buckets are emitted cumulatively with a trailing `+Inf` bucket.
pub fn to_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.metrics {
        let pn = prom_name(name);
        match v {
            MetricValue::Counter(c) => {
                out.push_str(&format!("# TYPE {pn} counter\n{pn} {c}\n"));
            }
            MetricValue::Gauge(g) => {
                out.push_str(&format!("# TYPE {pn} gauge\n{pn} {}\n", prom_num(*g)));
            }
            MetricValue::Histogram(h) => {
                out.push_str(&format!("# TYPE {pn} histogram\n"));
                let mut cum = 0u64;
                for (bound, c) in &h.buckets {
                    cum += c;
                    if bound.is_finite() {
                        out.push_str(&format!(
                            "{pn}_bucket{{le=\"{}\"}} {cum}\n",
                            prom_num(*bound)
                        ));
                    }
                }
                out.push_str(&format!("{pn}_bucket{{le=\"+Inf\"}} {}\n", h.count));
                out.push_str(&format!("{pn}_sum {}\n", prom_num(h.sum)));
                out.push_str(&format!("{pn}_count {}\n", h.count));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics_lock() -> std::sync::MutexGuard<'static, ()> {
        // The registry and enable flag are process-global; recording
        // tests serialize here (same discipline as the tracing tests).
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _l = metrics_lock();
        disable();
        reset();
        counter("t.disabled.c").inc();
        gauge("t.disabled.g").set(3.5);
        histogram("t.disabled.h").record(42.0);
        assert_eq!(counter("t.disabled.c").get(), 0);
        assert_eq!(gauge("t.disabled.g").get(), 0.0);
        assert_eq!(histogram("t.disabled.h").snapshot().count, 0);
    }

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut prev = 0usize;
        let mut v = 1e-10;
        while v < 1e10 {
            let i = bucket_index(v);
            assert!(i < HIST_BUCKETS);
            assert!(i >= prev, "monotone at {v}");
            assert!(
                v < bucket_upper_bound(i),
                "{v} below its bucket bound {}",
                bucket_upper_bound(i)
            );
            prev = i;
            v *= 1.07;
        }
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(f64::INFINITY), HIST_BUCKETS - 1);
        assert_eq!(bucket_index(1.0), bucket_index(1.0000000001));
    }

    #[test]
    fn histogram_merge_is_shard_invariant() {
        let _l = metrics_lock();
        enable();
        reset();
        let samples: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37) % 250.0).collect();
        let serial = histogram("t.merge.serial");
        for &s in &samples {
            serial.record(s);
        }
        let sharded = histogram("t.merge.sharded");
        std::thread::scope(|scope| {
            for chunk in samples.chunks(250) {
                scope.spawn(move || {
                    for &s in chunk {
                        sharded.record(s);
                    }
                });
            }
        });
        disable();
        assert_eq!(serial.snapshot(), sharded.snapshot());
        // Explicit snapshot merge agrees with shared-registry merge.
        let mut acc = HistogramSnapshot {
            count: 0,
            sum: 0.0,
            buckets: Vec::new(),
        };
        for chunk in samples.chunks(100) {
            let h = Histogram::default();
            enable();
            for &s in chunk {
                h.record(s);
            }
            disable();
            acc.merge(&h.snapshot());
        }
        assert_eq!(acc, serial.snapshot());
    }

    #[test]
    fn expositions_roundtrip_fields() {
        let _l = metrics_lock();
        enable();
        reset();
        counter("t.expo.count").add(7);
        gauge("t.expo.gauge").set(1.5);
        let h = histogram("t.expo.hist");
        h.record(3.0);
        h.record(30.0);
        disable();
        let snap = snapshot();
        let js = to_json(&snap);
        let v = crate::json::parse(&js).expect("valid JSON");
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some(METRICS_SCHEMA)
        );
        let m = v.get("metrics").expect("metrics object");
        assert_eq!(
            m.get("t.expo.count")
                .and_then(|c| c.get("value"))
                .and_then(|x| x.as_f64()),
            Some(7.0)
        );
        let hist = m.get("t.expo.hist").expect("histogram");
        assert_eq!(hist.get("count").and_then(|x| x.as_f64()), Some(2.0));
        assert_eq!(hist.get("sum").and_then(|x| x.as_f64()), Some(33.0));
        let prom = to_prometheus(&snap);
        assert!(prom.contains("# TYPE pipemap_t_expo_count counter"));
        assert!(prom.contains("pipemap_t_expo_count 7"));
        assert!(prom.contains("pipemap_t_expo_hist_bucket{le=\"+Inf\"} 2"));
        assert!(prom.contains("pipemap_t_expo_hist_sum 33"));
    }

    #[test]
    fn reset_zeroes_without_invalidating_handles() {
        let _l = metrics_lock();
        enable();
        let c = counter("t.reset.c");
        c.add(5);
        reset();
        assert_eq!(c.get(), 0);
        c.inc();
        disable();
        assert_eq!(c.get(), 1);
    }
}
