//! # pipemap-obs
//!
//! Zero-dependency structured tracing and metrics for the pipemap
//! workspace: RAII span guards forming a hierarchical phase tree,
//! monotonic timestamps, instant events, counters, and per-thread event
//! buffers drained into a bounded global sink.
//!
//! The crate is built around one invariant: **telemetry is read-only**.
//! Instrumented code never branches on recorded data, so tracing on or
//! off cannot change any result (the solver's determinism contract in
//! particular). The disabled path is a single relaxed atomic load per
//! call site, cheap enough to leave the instrumentation compiled into
//! hot loops.
//!
//! Two exporters consume a captured [`Trace`]:
//!
//! * [`chrome::to_chrome_trace`] — Chrome trace-event JSON, loadable in
//!   `chrome://tracing` or [Perfetto](https://ui.perfetto.dev), with one
//!   lane per thread (branch-and-bound workers name their lanes);
//! * [`tree::phase_tree`] — a merged phase-time tree for the CLI's
//!   `--metrics` report.
//!
//! ```
//! pipemap_obs::enable();
//! {
//!     let _flow = pipemap_obs::span("flow");
//!     let _inner = pipemap_obs::span("cut-enum");
//!     pipemap_obs::instant("incumbent");
//! }
//! let trace = pipemap_obs::take();
//! assert_eq!(trace.events.iter().filter(|e| e.is_begin()).count(), 2);
//! pipemap_obs::disable();
//! ```
//!
//! # Threading model
//!
//! Every thread owns a lane (a Chrome-trace `tid`) and a local buffer;
//! buffers drain into the global sink when they fill, when the thread
//! exits, or on [`flush`]. [`take`] captures the sink contents; call it
//! after worker threads have been joined (all pipemap uses run workers
//! under `std::thread::scope`, which joins before the export runs).
//! The sink is bounded by [`MAX_EVENTS`]; overflow drops events and
//! counts them in [`Trace::dropped`] rather than growing without bound.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chrome;
pub mod json;
pub mod metrics;
pub mod report;
pub mod tree;
pub mod validate;

use std::borrow::Cow;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Upper bound on events held in the global sink. Beyond it, events are
/// dropped (and counted) instead of exhausting memory on long solves.
pub const MAX_EVENTS: usize = 1 << 20;
/// Thread-local buffers drain into the sink at this size.
const FLUSH_AT: usize = 1024;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_LANE: AtomicU32 = AtomicU32::new(0);
static DROPPED: AtomicUsize = AtomicUsize::new(0);
static SINK: Mutex<Vec<Event>> = Mutex::new(Vec::new());

/// The instant all timestamps are measured from (first `enable`).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Turn event recording on (idempotent). Pins the timestamp epoch on
/// first use.
pub fn enable() {
    let _ = epoch();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn event recording off. Already-buffered events stay collectable.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether recording is on — one relaxed load; this is the entire cost
/// of every instrumentation call site in disabled mode.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// One argument value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Float (non-finite values export as `null`).
    Float(f64),
    /// String.
    Str(String),
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::Int(v)
    }
}
impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::UInt(v)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::UInt(v as u64)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::UInt(v as u64)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::Float(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// Key/value pairs attached to an event.
pub type Args = Vec<(&'static str, ArgValue)>;

/// What an [`Event`] records.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A span opened (Chrome `ph: "B"`).
    Begin,
    /// A span closed (Chrome `ph: "E"`).
    End,
    /// A point-in-time marker (Chrome `ph: "i"`).
    Instant,
    /// A sampled numeric series (Chrome `ph: "C"`).
    Counter(f64),
    /// Display name for this event's lane (Chrome `thread_name`
    /// metadata).
    LaneName(String),
}

/// One recorded telemetry event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event (span/counter/marker) name.
    pub name: Cow<'static, str>,
    /// What happened.
    pub kind: EventKind,
    /// Microseconds since the recording epoch.
    pub ts_us: u64,
    /// Owning lane (one per thread; Chrome-trace `tid`).
    pub lane: u32,
    /// Attached key/value arguments.
    pub args: Args,
}

impl Event {
    /// `true` for span-begin events.
    pub fn is_begin(&self) -> bool {
        self.kind == EventKind::Begin
    }

    /// `true` for span-end events.
    pub fn is_end(&self) -> bool {
        self.kind == EventKind::End
    }
}

/// A captured event stream, ready for export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Events in sink arrival order (chronological within each lane).
    pub events: Vec<Event>,
    /// Events lost to the [`MAX_EVENTS`] bound.
    pub dropped: usize,
}

impl Trace {
    /// Wall-clock covered by the trace, in microseconds.
    pub fn wall_us(&self) -> u64 {
        let min = self.events.iter().map(|e| e.ts_us).min().unwrap_or(0);
        let max = self.events.iter().map(|e| e.ts_us).max().unwrap_or(0);
        max - min
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

struct LaneBuf {
    lane: u32,
    buf: Vec<Event>,
}

impl Drop for LaneBuf {
    fn drop(&mut self) {
        drain(&mut self.buf);
    }
}

thread_local! {
    static LANE: RefCell<LaneBuf> = RefCell::new(LaneBuf {
        lane: NEXT_LANE.fetch_add(1, Ordering::Relaxed),
        buf: Vec::new(),
    });
}

fn drain(buf: &mut Vec<Event>) {
    if buf.is_empty() {
        return;
    }
    let mut sink = SINK.lock().unwrap_or_else(|p| p.into_inner());
    let room = MAX_EVENTS.saturating_sub(sink.len());
    if room >= buf.len() {
        sink.append(buf);
    } else {
        DROPPED.fetch_add(buf.len() - room, Ordering::Relaxed);
        sink.extend(buf.drain(..room));
        buf.clear();
    }
}

fn record(kind: EventKind, name: Cow<'static, str>, args: Args) {
    let ts_us = now_us();
    LANE.with(|l| {
        let mut l = l.borrow_mut();
        let lane = l.lane;
        l.buf.push(Event {
            name,
            kind,
            ts_us,
            lane,
            args,
        });
        if l.buf.len() >= FLUSH_AT {
            drain(&mut l.buf);
        }
    });
}

/// RAII span: records `Begin` at creation and `End` on drop. Inert (and
/// free beyond one atomic load) when recording is disabled — the
/// enabled check happens at creation so a span never emits an `End`
/// without its `Begin`.
#[derive(Debug)]
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing"]
pub struct SpanGuard {
    name: Option<Cow<'static, str>>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(name) = self.name.take() {
            record(EventKind::End, name, Vec::new());
        }
    }
}

/// Open a span over the enclosing scope.
pub fn span(name: impl Into<Cow<'static, str>>) -> SpanGuard {
    span_with(name, Vec::new())
}

/// Open a span carrying key/value arguments.
pub fn span_with(name: impl Into<Cow<'static, str>>, args: Args) -> SpanGuard {
    if !enabled() {
        return SpanGuard { name: None };
    }
    let name = name.into();
    record(EventKind::Begin, name.clone(), args);
    SpanGuard { name: Some(name) }
}

/// Record a point-in-time marker.
pub fn instant(name: impl Into<Cow<'static, str>>) {
    instant_with(name, Vec::new());
}

/// Record a point-in-time marker with arguments.
pub fn instant_with(name: impl Into<Cow<'static, str>>, args: Args) {
    if !enabled() {
        return;
    }
    record(EventKind::Instant, name.into(), args);
}

/// Sample a counter series (rendered as a value-over-time track).
pub fn counter(name: impl Into<Cow<'static, str>>, value: f64) {
    if !enabled() {
        return;
    }
    record(EventKind::Counter(value), name.into(), Vec::new());
}

/// Name the current thread's lane in trace exports (e.g.
/// `"bb-worker-3"`). Safe to call repeatedly; the last name wins.
pub fn lane_name(name: impl Into<String>) {
    if !enabled() {
        return;
    }
    record(
        EventKind::LaneName(name.into()),
        Cow::Borrowed(""),
        Vec::new(),
    );
}

/// Worker-thread guard: names the lane on creation and [`flush`]es the
/// thread's buffer on drop.
///
/// Bind it **first** inside a worker closure so it drops last, after
/// every span the worker opened. This matters for scoped threads:
/// `std::thread::scope` unblocks as soon as the closure returns, while
/// thread-local destructors (the drain backstop) run afterwards — a
/// [`take`] racing that window could miss the worker's tail events.
/// The guard's in-closure flush closes the race.
#[derive(Debug)]
#[must_use = "bind the guard (`let _lane = ...`) so it flushes when the worker ends"]
pub struct LaneGuard {
    _priv: (),
}

impl Drop for LaneGuard {
    fn drop(&mut self) {
        flush();
    }
}

/// Create a [`LaneGuard`] for the current worker thread.
pub fn lane_guard(name: impl Into<String>) -> LaneGuard {
    lane_name(name);
    LaneGuard { _priv: () }
}

/// Drain the current thread's buffer into the global sink.
pub fn flush() {
    LANE.with(|l| drain(&mut l.borrow_mut().buf));
}

/// Flush the current thread and capture everything collected so far,
/// leaving the sink empty. Worker threads must have flushed first: bind
/// an [`lane_guard`] (or call [`flush`]) inside each worker closure —
/// the thread-local drain on thread exit alone races `thread::scope`
/// join, which returns when the closure does, not when the thread dies.
pub fn take() -> Trace {
    flush();
    let events = std::mem::take(&mut *SINK.lock().unwrap_or_else(|p| p.into_inner()));
    Trace {
        events,
        dropped: DROPPED.swap(0, Ordering::Relaxed),
    }
}

#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    // The sink and enable flag are process-global; tests that record
    // serialize on this lock so parallel test threads don't interleave.
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let _l = test_lock();
        disable();
        let _ = take();
        {
            let _s = span("dead");
            instant("dead");
            counter("dead", 1.0);
            lane_name("dead");
        }
        assert!(take().is_empty());
    }

    #[test]
    fn spans_nest_and_balance() {
        let _l = test_lock();
        let _ = take();
        enable();
        {
            let _outer = span("outer");
            {
                let _inner = span_with("inner", vec![("k", ArgValue::UInt(7))]);
            }
            instant("mark");
        }
        disable();
        let t = take();
        let begins = t.events.iter().filter(|e| e.is_begin()).count();
        let ends = t.events.iter().filter(|e| e.is_end()).count();
        assert_eq!(begins, 2);
        assert_eq!(ends, 2);
        // LIFO ordering: inner closes before outer.
        let names: Vec<&str> = t.events.iter().map(|e| e.name.as_ref()).collect();
        assert_eq!(names, ["outer", "inner", "inner", "mark", "outer"]);
        assert_eq!(t.dropped, 0);
    }

    #[test]
    fn enable_mid_span_emits_no_orphan_end() {
        let _l = test_lock();
        disable();
        let _ = take();
        let s = span("orphan"); // disabled at creation: inert forever
        enable();
        drop(s);
        disable();
        assert!(take().is_empty());
    }

    #[test]
    fn worker_threads_drain_on_exit() {
        let _l = test_lock();
        let _ = take();
        enable();
        std::thread::scope(|scope| {
            for i in 0..3 {
                scope.spawn(move || {
                    let _lane = lane_guard(format!("w{i}"));
                    let _s = span("work");
                });
            }
        });
        disable();
        let t = take();
        let lanes: std::collections::BTreeSet<u32> = t.events.iter().map(|e| e.lane).collect();
        assert_eq!(lanes.len(), 3, "one lane per worker");
        assert_eq!(t.events.iter().filter(|e| e.is_begin()).count(), 3);
        assert_eq!(
            t.events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::LaneName(_)))
                .count(),
            3
        );
    }

    #[test]
    fn sink_is_bounded() {
        let _l = test_lock();
        let _ = take();
        enable();
        // Pre-fill the sink to its cap, then record more.
        {
            let mut sink = SINK.lock().unwrap();
            let ev = Event {
                name: Cow::Borrowed("fill"),
                kind: EventKind::Instant,
                ts_us: 0,
                lane: 0,
                args: Vec::new(),
            };
            sink.resize(MAX_EVENTS, ev);
        }
        instant("overflow");
        flush();
        disable();
        let t = take();
        assert_eq!(t.events.len(), MAX_EVENTS);
        assert!(t.dropped >= 1);
    }
}
