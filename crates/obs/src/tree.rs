//! Phase-time tree: the `pipemap --metrics` report.
//!
//! Span begin/end events are replayed per lane and merged by name path
//! into one tree: a node's **total** is the summed wall-clock of every
//! span instance on that path (across all lanes), **count** is how many
//! instances contributed. Lanes run concurrently, so sibling totals may
//! legitimately sum past the wall clock; within one path, however,
//! children always fit inside their parent — [`PhaseTree::check`]
//! asserts exactly that invariant (it backs the golden trace tests).

use crate::{EventKind, Trace};
use std::collections::BTreeMap;

/// One merged phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseNode {
    /// Span name.
    pub name: String,
    /// Summed duration across all instances, in microseconds.
    pub total_us: u64,
    /// Number of span instances merged into this node.
    pub count: usize,
    /// Nested phases, in first-seen order.
    pub children: Vec<PhaseNode>,
}

impl PhaseNode {
    fn new(name: String) -> Self {
        PhaseNode {
            name,
            total_us: 0,
            count: 0,
            children: Vec::new(),
        }
    }

    fn child_mut(&mut self, name: &str) -> &mut PhaseNode {
        if let Some(i) = self.children.iter().position(|c| c.name == name) {
            return &mut self.children[i];
        }
        self.children.push(PhaseNode::new(name.to_string()));
        self.children.last_mut().expect("just pushed")
    }

    /// Self time: total minus time attributed to children.
    pub fn self_us(&self) -> u64 {
        self.total_us
            .saturating_sub(self.children.iter().map(|c| c.total_us).sum())
    }
}

/// The merged tree plus the wall clock it is reconciled against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseTree {
    /// Top-level phases in first-seen order.
    pub roots: Vec<PhaseNode>,
    /// Wall-clock covered by the trace, in microseconds.
    pub wall_us: u64,
}

/// Build the merged phase tree of a trace.
pub fn phase_tree(trace: &Trace) -> PhaseTree {
    // Replay each lane's B/E stream against a per-lane path stack; all
    // lanes accumulate into one shared root.
    let mut root = PhaseNode::new(String::new());
    let mut stacks: BTreeMap<u32, Vec<(String, u64)>> = BTreeMap::new();
    let last_ts = trace.events.iter().map(|e| e.ts_us).max().unwrap_or(0);
    for e in &trace.events {
        match &e.kind {
            EventKind::Begin => stacks
                .entry(e.lane)
                .or_default()
                .push((e.name.to_string(), e.ts_us)),
            EventKind::End => {
                let stack = stacks.entry(e.lane).or_default();
                // Tolerate a stray E (possible after sink-full drops):
                // pop only a matching open span.
                if stack.last().is_some_and(|(n, _)| *n == *e.name) {
                    let (_, begin) = stack.pop().expect("non-empty");
                    credit(&mut root, stack, &e.name, e.ts_us.saturating_sub(begin));
                }
            }
            _ => {}
        }
    }
    // Spans still open (dropped E or an in-flight capture) are closed at
    // the trace's final timestamp so their time is not lost.
    for stack in stacks.values_mut() {
        while let Some((name, begin)) = stack.pop() {
            credit(&mut root, stack, &name, last_ts.saturating_sub(begin));
        }
    }
    PhaseTree {
        roots: root.children,
        wall_us: trace.wall_us(),
    }
}

fn credit(root: &mut PhaseNode, path: &[(String, u64)], name: &str, dur_us: u64) {
    let mut node = root;
    for (seg, _) in path {
        node = node.child_mut(seg);
    }
    let leaf = node.child_mut(name);
    leaf.total_us += dur_us;
    leaf.count += 1;
}

impl PhaseTree {
    /// Verify the tree reconciles with the wall clock: every node's
    /// children fit inside it (small slack for timestamp rounding), and
    /// no single-instance node exceeds the trace wall.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first violating phase.
    pub fn check(&self) -> Result<(), String> {
        const SLACK_US: u64 = 100;
        fn walk(n: &PhaseNode, wall_us: u64) -> Result<(), String> {
            let kids: u64 = n.children.iter().map(|c| c.total_us).sum();
            if kids > n.total_us + SLACK_US {
                return Err(format!(
                    "phase {:?}: children total {} us exceeds own total {} us",
                    n.name, kids, n.total_us
                ));
            }
            if n.count == 1 && n.total_us > wall_us + SLACK_US {
                return Err(format!(
                    "phase {:?}: total {} us exceeds trace wall {} us",
                    n.name, n.total_us, wall_us
                ));
            }
            n.children.iter().try_for_each(|c| walk(c, wall_us))
        }
        self.roots.iter().try_for_each(|r| walk(r, self.wall_us))
    }

    /// Render the human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let busy: u64 = self.roots.iter().map(|r| r.total_us).sum();
        out.push_str(&format!(
            "phase-time tree  (wall {:.3} ms, instrumented {:.3} ms{})\n",
            self.wall_us as f64 / 1e3,
            busy as f64 / 1e3,
            if busy > self.wall_us {
                "; lanes overlap"
            } else {
                ""
            }
        ));
        out.push_str(&format!(
            "{:<44} {:>12} {:>7} {:>12} {:>6}\n",
            "phase", "total", "%wall", "self", "count"
        ));
        fn walk(out: &mut String, n: &PhaseNode, depth: usize, wall: u64) {
            let label = format!("{}{}", "  ".repeat(depth), n.name);
            out.push_str(&format!(
                "{:<44} {:>9.3} ms {:>6.1}% {:>9.3} ms {:>6}\n",
                label,
                n.total_us as f64 / 1e3,
                if wall > 0 {
                    n.total_us as f64 * 100.0 / wall as f64
                } else {
                    0.0
                },
                n.self_us() as f64 / 1e3,
                n.count
            ));
            for c in &n.children {
                walk(out, c, depth + 1, wall);
            }
        }
        for r in &self.roots {
            walk(&mut out, r, 0, self.wall_us);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{span, take, test_lock};

    #[test]
    fn merges_lanes_and_reconciles() {
        let _l = test_lock();
        let _ = take();
        crate::enable();
        std::thread::scope(|scope| {
            for i in 0..2 {
                scope.spawn(move || {
                    let _lane = crate::lane_guard(format!("w{i}"));
                    let _outer = span("solve");
                    for _ in 0..3 {
                        let _inner = span("node");
                        std::hint::black_box(0u64);
                    }
                });
            }
        });
        crate::disable();
        let tree = phase_tree(&take());
        assert_eq!(tree.roots.len(), 1);
        let solve = &tree.roots[0];
        assert_eq!(solve.name, "solve");
        assert_eq!(solve.count, 2, "two lanes merged");
        assert_eq!(solve.children.len(), 1);
        assert_eq!(solve.children[0].count, 6);
        tree.check().expect("children fit in parents");
        let text = tree.render();
        assert!(text.contains("solve"));
        assert!(text.contains("node"));
    }

    #[test]
    fn unclosed_spans_are_closed_at_trace_end() {
        use crate::{Event, EventKind, Trace};
        use std::borrow::Cow;
        let mk = |kind, ts_us| Event {
            name: Cow::Borrowed("p"),
            kind,
            ts_us,
            lane: 0,
            args: Vec::new(),
        };
        let trace = Trace {
            events: vec![mk(EventKind::Begin, 10), mk(EventKind::Instant, 50)],
            dropped: 0,
        };
        let tree = phase_tree(&trace);
        assert_eq!(tree.roots[0].total_us, 40);
        tree.check().expect("ok");
    }
}
