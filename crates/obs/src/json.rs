//! A minimal JSON reader (the workspace is offline and dependency-free,
//! so there is no serde). Complete enough to round-trip the Chrome
//! traces this crate emits and the reports the bench suite writes:
//! objects, arrays, strings with escapes, numbers, booleans, null.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Keyed map; duplicate keys keep the last value.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a JSON document.
///
/// # Errors
///
/// Returns a human-readable message with a byte offset on malformed
/// input (including trailing garbage).
pub fn parse(src: &str) -> Result<Value, String> {
    let mut p = Parser {
        b: src.as_bytes(),
        i: 0,
    };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing characters at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self
            .b
            .get(self.i)
            .is_some_and(|c| matches!(c, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.i += 1;
        }
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.i)
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn lit(&mut self, text: &str, v: Value) -> Result<Value, String> {
        if self.b[self.i..].starts_with(text.as_bytes()) {
            self.i += text.len();
            Ok(v)
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        if self.b.get(self.i) != Some(&b'"') {
            return Err(self.err("expected string"));
        }
        self.i += 1;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogates are not paired up; traces we emit
                            // only escape control characters.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest =
                        std::str::from_utf8(&self.b[self.i..]).map_err(|_| self.err("utf8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("eof"))?;
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.i += 1; // '['
        let mut out = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            self.ws();
            out.push(self.value()?);
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.i += 1; // '{'
        let mut out = BTreeMap::new();
        self.ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            if self.b.get(self.i) != Some(&b':') {
                return Err(self.err("expected ':'"));
            }
            self.i += 1;
            self.ws();
            let v = self.value()?;
            out.insert(key, v);
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(out));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_basic_document() {
        let v = parse(r#"{"a": [1, -2.5, 1e3], "s": "x\"\\\nA", "t": true, "n": null, "o": {}}"#)
            .expect("parses");
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_f64(), Some(1e3));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\"\\\nA"));
        assert_eq!(v.get("t"), Some(&Value::Bool(true)));
        assert_eq!(v.get("n"), Some(&Value::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse("nul").is_err());
    }
}
