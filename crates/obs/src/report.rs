//! Per-solve flight recorder: the [`SolveReport`] behind `pipemap
//! report`.
//!
//! A report is assembled entirely from a captured [`Trace`]: the solver
//! layers emit summary instants (`milp-stats`, `search-stats`,
//! `cut-round-bound`, `resolve-stats`, `decompose-done`, …) alongside
//! their spans, and this module folds spans into wall-clock **phase
//! attribution** and instants into **gap-closure attribution** — which
//! cut families moved the root bound and by how much, what branching
//! contributed, where incumbents came from, how warm starts and the
//! resolve fallback ladder performed. The result answers "why was this
//! solve slow / why did it time out" without opening a Perfetto UI.
//!
//! Reports render two ways: [`SolveReport::render`] (human-readable
//! diagnosis) and [`SolveReport::to_json`] (schema
//! `pipemap-solve-report-v1`, validated by `trace-check`). A saved
//! Chrome trace can be re-ingested with [`trace_from_chrome`], so
//! `pipemap report trace.json` works on yesterday's artifact.

use crate::json::{parse, Value};
use crate::tree::{phase_tree, PhaseNode};
use crate::{ArgValue, Event, EventKind, Trace};
use std::borrow::Cow;
use std::collections::BTreeMap;

/// Schema identifier embedded in the JSON twin.
pub const REPORT_SCHEMA: &str = "pipemap-solve-report-v1";

/// One wall-clock phase slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSlice {
    /// Phase (span) name; `"(unattributed)"` for the remainder.
    pub name: String,
    /// Summed duration, microseconds.
    pub total_us: u64,
    /// Number of span instances merged in.
    pub count: usize,
}

/// One branch-and-bound worker lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerSlice {
    /// Lane display name (`bb-worker-N`).
    pub lane: String,
    /// Time spent inside top-level `node` spans, microseconds.
    pub busy_us: u64,
    /// Nodes processed by this worker.
    pub nodes: u64,
}

/// One gap-closure attribution entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Feature {
    /// Feature name (`cuts:gomory`, `branching`, `incumbents:lns`, …).
    pub name: String,
    /// What the value measures: `root-bound`, `tree-bound`, or
    /// `objective`.
    pub kind: String,
    /// Attributed movement magnitude (objective units).
    pub value: f64,
    /// Human-readable qualifier.
    pub detail: String,
}

/// Warm-start efficacy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarmSummary {
    /// Dual warm-start attempts.
    pub attempts: u64,
    /// Attempts that produced a usable re-optimization.
    pub hits: u64,
    /// Why warm starts were skipped entirely, when they were.
    pub skip_reason: Option<String>,
}

/// One cut-loop round's root-bound movement.
#[derive(Debug, Clone, PartialEq)]
pub struct CutRound {
    /// Round number (1-based).
    pub round: u64,
    /// Root LP objective before the round's cuts.
    pub obj_before: f64,
    /// Root LP objective after.
    pub obj_after: f64,
    /// Cuts added this round per family, name-sorted.
    pub added: Vec<(String, u64)>,
}

/// One incumbent in the solve timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Incumbent {
    /// Microseconds since trace epoch.
    pub ts_us: u64,
    /// Incumbent objective.
    pub objective: f64,
    /// Where it came from (`branch` or `lns`).
    pub source: String,
}

/// The assembled flight-recorder artifact for one solve.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolveReport {
    /// Wall-clock the phase attribution reconciles against
    /// (the flow span's duration, or the whole trace), microseconds.
    pub wall_us: u64,
    /// Final solver status, when a `milp-stats` instant was recorded.
    pub status: Option<String>,
    /// Final objective.
    pub objective: Option<f64>,
    /// Final best bound.
    pub best_bound: Option<f64>,
    /// Relative gap at the end of the solve.
    pub gap_rel: Option<f64>,
    /// Branch-and-bound nodes processed.
    pub nodes: Option<u64>,
    /// Simplex iterations.
    pub lp_iterations: Option<u64>,
    /// Model columns.
    pub variables: Option<u64>,
    /// Model rows.
    pub constraints: Option<u64>,
    /// Which subsystem produced the final incumbent.
    pub incumbent_source: Option<String>,
    /// Top-level wall-clock attribution; sums to `wall_us` (an
    /// `"(unattributed)"` slice absorbs the remainder).
    pub phases: Vec<PhaseSlice>,
    /// Attribution inside the MILP solve itself.
    pub solve_phases: Vec<PhaseSlice>,
    /// Per-worker tree-search load.
    pub workers: Vec<WorkerSlice>,
    /// Gap-closure attribution, largest movement first.
    pub features: Vec<Feature>,
    /// Name of the largest-movement feature.
    pub top_feature: Option<String>,
    /// Warm-start efficacy, when the search reported it.
    pub warm: Option<WarmSummary>,
    /// Resolve fallback-ladder counters (`resolve-stats` args).
    pub resolve: Vec<(String, f64)>,
    /// `(subproblems, stitched)` from the LNS decompose pass.
    pub lns: Option<(u64, u64)>,
    /// Cut-loop rounds in order.
    pub cut_rounds: Vec<CutRound>,
    /// Incumbent timeline in trace order.
    pub incumbents: Vec<Incumbent>,
    /// Events lost to the sink bound (attribution is partial if > 0).
    pub dropped_events: usize,
    /// Human-readable findings, most significant first.
    pub diagnosis: Vec<String>,
}

fn arg_f64(e: &Event, key: &str) -> Option<f64> {
    e.args
        .iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| match v {
            ArgValue::Int(n) => Some(*n as f64),
            ArgValue::UInt(n) => Some(*n as f64),
            ArgValue::Float(f) => Some(*f),
            ArgValue::Str(_) => None,
        })
}

fn arg_u64(e: &Event, key: &str) -> Option<u64> {
    arg_f64(e, key).map(|v| v.max(0.0) as u64)
}

fn arg_str<'e>(e: &'e Event, key: &str) -> Option<&'e str> {
    e.args
        .iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| match v {
            ArgValue::Str(s) => Some(s.as_str()),
            _ => None,
        })
}

fn slices(children: &[PhaseNode], own_total: u64) -> Vec<PhaseSlice> {
    let mut out: Vec<PhaseSlice> = children
        .iter()
        .map(|c| PhaseSlice {
            name: c.name.clone(),
            total_us: c.total_us,
            count: c.count,
        })
        .collect();
    let attributed: u64 = out.iter().map(|s| s.total_us).sum();
    if own_total > attributed {
        out.push(PhaseSlice {
            name: "(unattributed)".into(),
            total_us: own_total - attributed,
            count: 1,
        });
    }
    out
}

fn find_node<'t>(nodes: &'t [PhaseNode], name: &str) -> Option<&'t PhaseNode> {
    for n in nodes {
        if n.name == name {
            return Some(n);
        }
        if let Some(hit) = find_node(&n.children, name) {
            return Some(hit);
        }
    }
    None
}

/// Assemble a [`SolveReport`] from a captured trace.
pub fn build(trace: &Trace) -> SolveReport {
    let mut r = SolveReport {
        dropped_events: trace.dropped,
        ..SolveReport::default()
    };

    // ---- wall-clock phase attribution -------------------------------
    let tree = phase_tree(trace);
    let flow = tree.roots.iter().find(|n| n.name.starts_with("flow:"));
    match flow {
        Some(f) => {
            r.wall_us = f.total_us;
            r.phases = slices(&f.children, f.total_us);
        }
        None => {
            r.wall_us = tree.wall_us;
            r.phases = slices(&tree.roots, tree.wall_us);
        }
    }
    if let Some(solve) = find_node(&tree.roots, "milp-solve") {
        r.solve_phases = slices(&solve.children, solve.total_us);
    }

    // ---- per-worker tree-search load --------------------------------
    let mut lane_names: BTreeMap<u32, String> = BTreeMap::new();
    for e in &trace.events {
        if let EventKind::LaneName(n) = &e.kind {
            lane_names.insert(e.lane, n.clone());
        }
    }
    let mut per_lane: BTreeMap<u32, (u64, u64, usize, u64)> = BTreeMap::new();
    // (busy_us, nodes, node_depth, open_ts) per lane.
    for e in &trace.events {
        if e.name != "node" {
            continue;
        }
        let s = per_lane.entry(e.lane).or_default();
        match e.kind {
            EventKind::Begin => {
                if s.2 == 0 {
                    s.3 = e.ts_us;
                }
                s.2 += 1;
            }
            EventKind::End => {
                s.2 = s.2.saturating_sub(1);
                if s.2 == 0 {
                    s.0 += e.ts_us.saturating_sub(s.3);
                    s.1 += 1;
                }
            }
            _ => {}
        }
    }
    for (lane, (busy_us, nodes, _, _)) in &per_lane {
        let name = lane_names
            .get(lane)
            .cloned()
            .unwrap_or_else(|| format!("lane-{lane}"));
        if name.starts_with("bb-worker") {
            r.workers.push(WorkerSlice {
                lane: name,
                busy_us: *busy_us,
                nodes: *nodes,
            });
        }
    }
    r.workers.sort_by(|a, b| a.lane.cmp(&b.lane));

    // ---- summary instants -------------------------------------------
    let mut root_bound_after_cuts: Option<f64> = None;
    for e in &trace.events {
        if e.kind != EventKind::Instant {
            continue;
        }
        match e.name.as_ref() {
            "milp-stats" => {
                r.status = arg_str(e, "status").map(str::to_string);
                r.objective = arg_f64(e, "objective");
                r.best_bound = arg_f64(e, "best_bound");
                r.gap_rel = arg_f64(e, "gap_rel");
                r.nodes = arg_u64(e, "nodes");
                r.lp_iterations = arg_u64(e, "lp_iterations");
                r.variables = arg_u64(e, "variables");
                r.constraints = arg_u64(e, "constraints");
                r.incumbent_source = arg_str(e, "incumbent_source").map(str::to_string);
            }
            "search-stats" => {
                let skip = arg_str(e, "warm_skip")
                    .filter(|s| !s.is_empty() && *s != "none")
                    .map(str::to_string);
                r.warm = Some(WarmSummary {
                    attempts: arg_u64(e, "warm_attempts").unwrap_or(0),
                    hits: arg_u64(e, "warm_hits").unwrap_or(0),
                    skip_reason: skip,
                });
                if root_bound_after_cuts.is_none() {
                    root_bound_after_cuts = arg_f64(e, "root_bound");
                }
            }
            "cut-round-bound" => {
                let mut added: Vec<(String, u64)> = Vec::new();
                for fam in ["clique", "cover", "implication", "gomory"] {
                    if let Some(c) = arg_u64(e, fam) {
                        if c > 0 {
                            added.push((fam.to_string(), c));
                        }
                    }
                }
                let round = CutRound {
                    round: arg_u64(e, "round").unwrap_or(0),
                    obj_before: arg_f64(e, "obj_before").unwrap_or(f64::NAN),
                    obj_after: arg_f64(e, "obj_after").unwrap_or(f64::NAN),
                    added,
                };
                root_bound_after_cuts = Some(round.obj_after);
                r.cut_rounds.push(round);
            }
            "resolve-stats" => {
                r.resolve = e
                    .args
                    .iter()
                    .filter_map(|(k, _)| arg_f64(e, k).map(|v| (k.to_string(), v)))
                    .collect();
                r.resolve.sort_by(|a, b| a.0.cmp(&b.0));
            }
            "decompose-done" => {
                r.lns = Some((
                    arg_u64(e, "subproblems").unwrap_or(0),
                    arg_u64(e, "stitched").unwrap_or(0),
                ));
            }
            "incumbent-found" => {
                if let Some(obj) = arg_f64(e, "objective") {
                    r.incumbents.push(Incumbent {
                        ts_us: e.ts_us,
                        objective: obj,
                        source: "branch".into(),
                    });
                }
            }
            "decompose-stitch" => {
                if let Some(obj) = arg_f64(e, "objective") {
                    r.incumbents.push(Incumbent {
                        ts_us: e.ts_us,
                        objective: obj,
                        source: "lns".into(),
                    });
                }
            }
            _ => {}
        }
    }
    r.incumbents.sort_by_key(|i| i.ts_us);

    // ---- gap-closure attribution ------------------------------------
    // Cut families: each round's root-bound movement is split across the
    // families in proportion to the cuts they added that round.
    let mut family_delta: BTreeMap<String, f64> = BTreeMap::new();
    let mut family_cuts: BTreeMap<String, u64> = BTreeMap::new();
    for round in &r.cut_rounds {
        let delta = (round.obj_after - round.obj_before).abs();
        let total: u64 = round.added.iter().map(|(_, c)| c).sum();
        for (fam, c) in &round.added {
            *family_cuts.entry(fam.clone()).or_default() += c;
            if total > 0 && delta.is_finite() {
                *family_delta.entry(fam.clone()).or_default() += delta * *c as f64 / total as f64;
            }
        }
    }
    for (fam, delta) in &family_delta {
        r.features.push(Feature {
            name: format!("cuts:{fam}"),
            kind: "root-bound".into(),
            value: *delta,
            detail: format!("{} cuts", family_cuts.get(fam).copied().unwrap_or(0)),
        });
    }
    if let (Some(bb), Some(root)) = (r.best_bound, root_bound_after_cuts) {
        let moved = (bb - root).abs();
        if moved.is_finite() {
            r.features.push(Feature {
                name: "branching".into(),
                kind: "tree-bound".into(),
                value: moved,
                detail: format!("bound {root:.4} -> {bb:.4} in the tree"),
            });
        }
    }
    // Objective side: attribute each incumbent improvement to its source.
    let mut source_gain: BTreeMap<String, (f64, u64)> = BTreeMap::new();
    let mut best = f64::INFINITY;
    for inc in &r.incumbents {
        if inc.objective < best {
            let s = source_gain.entry(inc.source.clone()).or_default();
            if best.is_finite() {
                s.0 += best - inc.objective;
            }
            s.1 += 1;
            best = inc.objective;
        }
    }
    for (source, (gain, count)) in &source_gain {
        r.features.push(Feature {
            name: format!("incumbents:{source}"),
            kind: "objective".into(),
            value: *gain,
            detail: format!("{count} improving incumbent(s)"),
        });
    }
    r.features.sort_by(|a, b| {
        b.value
            .partial_cmp(&a.value)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.name.cmp(&b.name))
    });
    r.top_feature = r
        .features
        .iter()
        .find(|f| f.value > 0.0)
        .or(r.features.first())
        .map(|f| f.name.clone());

    r.diagnosis = diagnose(&r);
    r
}

fn diagnose(r: &SolveReport) -> Vec<String> {
    let mut out = Vec::new();
    let wall_ms = r.wall_us as f64 / 1e3;
    match r.status.as_deref() {
        Some("TimedOut") => {
            let gap = r
                .gap_rel
                .map(|g| format!(" with a {:.1}% gap open", g * 100.0))
                .unwrap_or_default();
            out.push(format!("solve timed out after {wall_ms:.0} ms{gap}"));
        }
        Some(status) => out.push(format!("solve finished {status} in {wall_ms:.0} ms")),
        None => out.push(format!(
            "trace covers {wall_ms:.0} ms (no milp-stats instant)"
        )),
    }
    if let Some(top) = r.phases.iter().max_by_key(|p| p.total_us) {
        if r.wall_us > 0 {
            out.push(format!(
                "{:.0}% of wall went to {}",
                top.total_us as f64 * 100.0 / r.wall_us as f64,
                top.name
            ));
        }
    }
    if let Some(f) = r.features.first() {
        if f.value > 0.0 {
            out.push(format!(
                "top gap-closing feature: {} (moved {:.4}, {})",
                f.name, f.value, f.detail
            ));
        }
    }
    if let Some(w) = &r.warm {
        if let Some(reason) = &w.skip_reason {
            out.push(format!("warm starts skipped: {reason}"));
        } else if w.attempts > 0 {
            out.push(format!(
                "warm starts hit {}/{} ({:.0}%)",
                w.hits,
                w.attempts,
                w.hits as f64 * 100.0 / w.attempts as f64
            ));
        }
    }
    if let Some((subs, stitched)) = r.lns {
        if subs > 0 {
            out.push(format!("LNS stitched {stitched}/{subs} region solutions"));
        }
    }
    if r.dropped_events > 0 {
        out.push(format!(
            "{} events dropped (sink full) — attribution is partial",
            r.dropped_events
        ));
    }
    out
}

// ---- rendering ------------------------------------------------------

fn ms(us: u64) -> f64 {
    us as f64 / 1e3
}

impl SolveReport {
    /// Render the human-readable diagnosis.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("solve report  (wall {:.3} ms", ms(self.wall_us)));
        if let Some(s) = &self.status {
            out.push_str(&format!(", status {s}"));
        }
        if let Some(o) = self.objective {
            out.push_str(&format!(", objective {o}"));
        }
        if let Some(b) = self.best_bound {
            out.push_str(&format!(", bound {b}"));
        }
        if let Some(g) = self.gap_rel {
            out.push_str(&format!(", gap {:.1}%", g * 100.0));
        }
        out.push_str(")\n\n");

        let table = |out: &mut String, title: &str, slices: &[PhaseSlice], wall: u64| {
            if slices.is_empty() {
                return;
            }
            out.push_str(&format!("{title}\n"));
            for s in slices {
                let pct = if wall > 0 {
                    s.total_us as f64 * 100.0 / wall as f64
                } else {
                    0.0
                };
                out.push_str(&format!(
                    "  {:<28} {:>10.3} ms {:>6.1}%  x{}\n",
                    s.name,
                    ms(s.total_us),
                    pct,
                    s.count
                ));
            }
            out.push('\n');
        };
        table(&mut out, "phase attribution", &self.phases, self.wall_us);
        let solve_wall: u64 = self.solve_phases.iter().map(|s| s.total_us).sum();
        table(
            &mut out,
            "inside milp-solve",
            &self.solve_phases,
            solve_wall,
        );

        if !self.workers.is_empty() {
            out.push_str("workers\n");
            for w in &self.workers {
                out.push_str(&format!(
                    "  {:<28} busy {:>10.3} ms  nodes {}\n",
                    w.lane,
                    ms(w.busy_us),
                    w.nodes
                ));
            }
            out.push('\n');
        }

        if !self.features.is_empty() {
            out.push_str("gap closure\n");
            for f in &self.features {
                out.push_str(&format!(
                    "  {:<28} {:>12.4}  [{}]  {}\n",
                    f.name, f.value, f.kind, f.detail
                ));
            }
            if let Some(top) = &self.top_feature {
                out.push_str(&format!("  top feature: {top}\n"));
            }
            out.push('\n');
        }

        if !self.cut_rounds.is_empty() {
            out.push_str("cut rounds\n");
            for c in &self.cut_rounds {
                let fams: Vec<String> = c.added.iter().map(|(f, n)| format!("{f} {n}")).collect();
                out.push_str(&format!(
                    "  round {:<3} obj {:.4} -> {:.4}  ({})\n",
                    c.round,
                    c.obj_before,
                    c.obj_after,
                    fams.join(", ")
                ));
            }
            out.push('\n');
        }

        if !self.resolve.is_empty() {
            out.push_str("resolve ladder\n");
            for (k, v) in &self.resolve {
                out.push_str(&format!("  {k:<28} {v}\n"));
            }
            out.push('\n');
        }

        out.push_str("diagnosis\n");
        for d in &self.diagnosis {
            out.push_str(&format!("  - {d}\n"));
        }
        out
    }

    /// Render the machine-readable JSON twin
    /// (schema `pipemap-solve-report-v1`).
    pub fn to_json(&self) -> String {
        let mut o = String::from("{\"schema\": ");
        jstr(&mut o, REPORT_SCHEMA);
        o.push_str(&format!(", \"wall_us\": {}", self.wall_us));
        jopt_str(&mut o, "status", self.status.as_deref());
        jopt_num(&mut o, "objective", self.objective);
        jopt_num(&mut o, "best_bound", self.best_bound);
        jopt_num(&mut o, "gap_rel", self.gap_rel);
        jopt_num(&mut o, "nodes", self.nodes.map(|v| v as f64));
        jopt_num(
            &mut o,
            "lp_iterations",
            self.lp_iterations.map(|v| v as f64),
        );
        jopt_num(&mut o, "variables", self.variables.map(|v| v as f64));
        jopt_num(&mut o, "constraints", self.constraints.map(|v| v as f64));
        jopt_str(&mut o, "incumbent_source", self.incumbent_source.as_deref());

        let phase_arr = |o: &mut String, key: &str, slices: &[PhaseSlice]| {
            o.push_str(&format!(", \"{key}\": ["));
            for (i, s) in slices.iter().enumerate() {
                if i > 0 {
                    o.push_str(", ");
                }
                o.push_str("{\"name\": ");
                jstr(o, &s.name);
                o.push_str(&format!(
                    ", \"total_us\": {}, \"count\": {}}}",
                    s.total_us, s.count
                ));
            }
            o.push(']');
        };
        phase_arr(&mut o, "phases", &self.phases);
        phase_arr(&mut o, "solve_phases", &self.solve_phases);

        o.push_str(", \"workers\": [");
        for (i, w) in self.workers.iter().enumerate() {
            if i > 0 {
                o.push_str(", ");
            }
            o.push_str("{\"lane\": ");
            jstr(&mut o, &w.lane);
            o.push_str(&format!(
                ", \"busy_us\": {}, \"nodes\": {}}}",
                w.busy_us, w.nodes
            ));
        }
        o.push(']');

        o.push_str(", \"features\": [");
        for (i, f) in self.features.iter().enumerate() {
            if i > 0 {
                o.push_str(", ");
            }
            o.push_str("{\"name\": ");
            jstr(&mut o, &f.name);
            o.push_str(", \"kind\": ");
            jstr(&mut o, &f.kind);
            o.push_str(", \"value\": ");
            jnum(&mut o, f.value);
            o.push_str(", \"detail\": ");
            jstr(&mut o, &f.detail);
            o.push('}');
        }
        o.push(']');
        jopt_str(&mut o, "top_feature", self.top_feature.as_deref());

        match &self.warm {
            Some(w) => {
                o.push_str(&format!(
                    ", \"warm\": {{\"attempts\": {}, \"hits\": {}, \"skip_reason\": ",
                    w.attempts, w.hits
                ));
                match &w.skip_reason {
                    Some(s) => jstr(&mut o, s),
                    None => o.push_str("null"),
                }
                o.push('}');
            }
            None => o.push_str(", \"warm\": null"),
        }

        o.push_str(", \"resolve\": {");
        for (i, (k, v)) in self.resolve.iter().enumerate() {
            if i > 0 {
                o.push_str(", ");
            }
            jstr(&mut o, k);
            o.push_str(": ");
            jnum(&mut o, *v);
        }
        o.push('}');

        match self.lns {
            Some((subs, stitched)) => o.push_str(&format!(
                ", \"lns\": {{\"subproblems\": {subs}, \"stitched\": {stitched}}}"
            )),
            None => o.push_str(", \"lns\": null"),
        }

        o.push_str(", \"cut_rounds\": [");
        for (i, c) in self.cut_rounds.iter().enumerate() {
            if i > 0 {
                o.push_str(", ");
            }
            o.push_str(&format!("{{\"round\": {}, \"obj_before\": ", c.round));
            jnum(&mut o, c.obj_before);
            o.push_str(", \"obj_after\": ");
            jnum(&mut o, c.obj_after);
            o.push_str(", \"added\": {");
            for (j, (f, n)) in c.added.iter().enumerate() {
                if j > 0 {
                    o.push_str(", ");
                }
                jstr(&mut o, f);
                o.push_str(&format!(": {n}"));
            }
            o.push_str("}}");
        }
        o.push(']');

        o.push_str(", \"incumbents\": [");
        for (i, inc) in self.incumbents.iter().enumerate() {
            if i > 0 {
                o.push_str(", ");
            }
            o.push_str(&format!("{{\"ts_us\": {}, \"objective\": ", inc.ts_us));
            jnum(&mut o, inc.objective);
            o.push_str(", \"source\": ");
            jstr(&mut o, &inc.source);
            o.push('}');
        }
        o.push(']');

        o.push_str(&format!(", \"dropped_events\": {}", self.dropped_events));
        o.push_str(", \"diagnosis\": [");
        for (i, d) in self.diagnosis.iter().enumerate() {
            if i > 0 {
                o.push_str(", ");
            }
            jstr(&mut o, d);
        }
        o.push_str("]}\n");
        o
    }
}

fn jstr(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn jnum(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

fn jopt_num(out: &mut String, key: &str, v: Option<f64>) {
    out.push_str(&format!(", \"{key}\": "));
    match v {
        Some(v) => jnum(out, v),
        None => out.push_str("null"),
    }
}

fn jopt_str(out: &mut String, key: &str, v: Option<&str>) {
    out.push_str(&format!(", \"{key}\": "));
    match v {
        Some(s) => jstr(out, s),
        None => out.push_str("null"),
    }
}

// ---- Chrome trace re-ingestion --------------------------------------

/// Reconstruct a [`Trace`] from a saved Chrome trace-event JSON
/// document, so `pipemap report` can run on a trace file instead of a
/// live solve. Argument keys are interned (the trace format has a small
/// fixed vocabulary).
///
/// # Errors
///
/// Returns a message when the document is not a Chrome trace.
pub fn trace_from_chrome(text: &str) -> Result<Trace, String> {
    let doc = parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = match (&doc, doc.get("traceEvents")) {
        (_, Some(Value::Arr(evs))) => evs.as_slice(),
        (Value::Arr(evs), _) => evs.as_slice(),
        _ => return Err("no traceEvents array".into()),
    };
    let mut interned: BTreeMap<String, &'static str> = BTreeMap::new();
    let mut intern = |s: &str| -> &'static str {
        if let Some(k) = interned.get(s) {
            return k;
        }
        let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
        interned.insert(s.to_string(), leaked);
        leaked
    };
    let mut out = Vec::with_capacity(events.len());
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let name = ev
            .get("name")
            .and_then(Value::as_str)
            .unwrap_or_default()
            .to_string();
        let lane = ev.get("tid").and_then(Value::as_f64).unwrap_or(0.0) as u32;
        let ts_us = ev.get("ts").and_then(Value::as_f64).unwrap_or(0.0).max(0.0) as u64;
        let mut args = Vec::new();
        if let Some(Value::Obj(map)) = ev.get("args") {
            for (k, v) in map {
                let av = match v {
                    Value::Num(n) => ArgValue::Float(*n),
                    Value::Str(s) => ArgValue::Str(s.clone()),
                    Value::Bool(b) => ArgValue::Str(b.to_string()),
                    _ => continue,
                };
                args.push((intern(k), av));
            }
        }
        let kind = match ph {
            "B" => EventKind::Begin,
            "E" => EventKind::End,
            "i" => EventKind::Instant,
            "C" => {
                let v = ev
                    .get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0);
                EventKind::Counter(v)
            }
            "M" => {
                if name != "thread_name" {
                    continue;
                }
                let n = ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_str)
                    .unwrap_or_default()
                    .to_string();
                EventKind::LaneName(n)
            }
            other => return Err(format!("event {i}: unsupported ph {other:?}")),
        };
        out.push(Event {
            name: Cow::Owned(name),
            kind,
            ts_us,
            lane,
            args,
        });
    }
    Ok(Trace {
        events: out,
        dropped: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{instant_with, lane_guard, span, span_with, take, test_lock};

    fn sample_trace() -> Trace {
        let _ = take();
        crate::enable();
        crate::lane_name("main");
        {
            let _f = span("flow:test");
            {
                let _b = span("milp-build");
                std::hint::black_box(0u64);
            }
            {
                let _s = span("milp-solve");
                {
                    let _p = span("presolve");
                    std::hint::black_box(0u64);
                }
                instant_with(
                    "cut-round-bound",
                    vec![
                        ("round", 1u64.into()),
                        ("obj_before", 10.0.into()),
                        ("obj_after", 12.5.into()),
                        ("gomory", 3u64.into()),
                        ("cover", 1u64.into()),
                    ],
                );
                std::thread::scope(|scope| {
                    scope.spawn(|| {
                        let _lane = lane_guard("bb-worker-0");
                        for _ in 0..2 {
                            let _n = span_with("node", vec![("depth", 1u64.into())]);
                            std::hint::black_box(0u64);
                        }
                        instant_with("incumbent-found", vec![("objective", 20.0.into())]);
                        instant_with("incumbent-found", vec![("objective", 16.0.into())]);
                    });
                });
                instant_with(
                    "search-stats",
                    vec![
                        ("warm_attempts", 5u64.into()),
                        ("warm_hits", 4u64.into()),
                        ("warm_skip", "none".into()),
                        ("root_bound", 12.5.into()),
                    ],
                );
            }
            instant_with(
                "milp-stats",
                vec![
                    ("status", "Optimal".into()),
                    ("objective", 16.0.into()),
                    ("best_bound", 16.0.into()),
                    ("gap_rel", 0.0.into()),
                    ("nodes", 2u64.into()),
                    ("lp_iterations", 40u64.into()),
                    ("variables", 10u64.into()),
                    ("constraints", 8u64.into()),
                    ("incumbent_source", "branch".into()),
                ],
            );
        }
        crate::disable();
        take()
    }

    #[test]
    fn report_attributes_phases_and_features() {
        let _l = test_lock();
        let trace = sample_trace();
        let r = build(&trace);
        assert_eq!(r.status.as_deref(), Some("Optimal"));
        assert_eq!(r.objective, Some(16.0));
        // Phases sum exactly to the flow wall (unattributed absorbs).
        let total: u64 = r.phases.iter().map(|p| p.total_us).sum();
        assert_eq!(total, r.wall_us);
        assert!(r.phases.iter().any(|p| p.name == "milp-solve"));
        assert_eq!(r.workers.len(), 1);
        assert_eq!(r.workers[0].nodes, 2);
        // Cut family attribution: 2.5 split 3:1 gomory:cover.
        let gom = r.features.iter().find(|f| f.name == "cuts:gomory").unwrap();
        assert!((gom.value - 2.5 * 0.75).abs() < 1e-9);
        // Incumbent improvement 20 -> 16 attributed to branch.
        let inc = r
            .features
            .iter()
            .find(|f| f.name == "incumbents:branch")
            .unwrap();
        assert!((inc.value - 4.0).abs() < 1e-9);
        assert!(r.top_feature.is_some());
        assert!(r.warm.as_ref().unwrap().skip_reason.is_none());
        assert!(!r.diagnosis.is_empty());
        let text = r.render();
        assert!(text.contains("phase attribution"));
        assert!(text.contains("top feature"));
    }

    #[test]
    fn json_twin_parses_and_roundtrips_through_chrome() {
        let _l = test_lock();
        let trace = sample_trace();
        let direct = build(&trace);
        let js = direct.to_json();
        let v = parse(&js).expect("report JSON parses");
        assert_eq!(v.get("schema").and_then(Value::as_str), Some(REPORT_SCHEMA));
        assert!(v.get("phases").and_then(Value::as_arr).is_some());
        // Re-ingest the Chrome export and rebuild: same attribution.
        let chrome = crate::chrome::to_chrome_trace(&trace);
        let again = build(&trace_from_chrome(&chrome).expect("chrome parses"));
        assert_eq!(again.status, direct.status);
        assert_eq!(again.phases, direct.phases);
        assert_eq!(again.workers, direct.workers);
        assert_eq!(again.top_feature, direct.top_feature);
    }
}
