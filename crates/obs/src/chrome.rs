//! Chrome trace-event JSON export.
//!
//! Emits the [Trace Event Format] consumed by `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev): a `traceEvents` array of
//! duration (`B`/`E`), instant (`i`), counter (`C`), and metadata (`M`)
//! records. Every pipemap lane (thread) becomes a `tid`; branch-and-
//! bound workers name theirs `bb-worker-N`, so a parallel solve renders
//! as one swim lane per worker.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::{ArgValue, EventKind, Trace};

/// Render a trace as a self-contained Chrome trace-event JSON document.
pub fn to_chrome_trace(trace: &Trace) -> String {
    let mut out = String::with_capacity(trace.events.len() * 96 + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for e in &trace.events {
        let mut ev = String::new();
        match &e.kind {
            EventKind::Begin => {
                push_common(&mut ev, &e.name, "B", e.ts_us, e.lane);
                push_args(&mut ev, &e.args);
            }
            EventKind::End => {
                push_common(&mut ev, &e.name, "E", e.ts_us, e.lane);
            }
            EventKind::Instant => {
                push_common(&mut ev, &e.name, "i", e.ts_us, e.lane);
                ev.push_str(",\"s\":\"t\"");
                push_args(&mut ev, &e.args);
            }
            EventKind::Counter(v) => {
                push_common(&mut ev, &e.name, "C", e.ts_us, e.lane);
                ev.push_str(",\"args\":{\"value\":");
                push_num(&mut ev, *v);
                ev.push('}');
            }
            EventKind::LaneName(name) => {
                push_common(&mut ev, "thread_name", "M", e.ts_us, e.lane);
                ev.push_str(",\"args\":{\"name\":\"");
                push_escaped(&mut ev, name);
                ev.push_str("\"}");
            }
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n{");
        out.push_str(&ev);
        out.push('}');
    }
    if let Some(last) = trace.events.iter().map(|e| e.ts_us).max() {
        // Surface drop-truncation in the trace itself.
        if trace.dropped > 0 {
            if !first {
                out.push(',');
            }
            out.push_str(&format!(
                "\n{{\"name\":\"obs: {} event(s) dropped (sink full)\",\"ph\":\"i\",\
                 \"pid\":1,\"tid\":0,\"ts\":{last},\"s\":\"g\"}}",
                trace.dropped
            ));
        }
    }
    out.push_str("\n]}\n");
    out
}

fn push_common(out: &mut String, name: &str, ph: &str, ts_us: u64, lane: u32) {
    out.push_str("\"name\":\"");
    push_escaped(out, name);
    out.push_str(&format!(
        "\",\"ph\":\"{ph}\",\"pid\":1,\"tid\":{lane},\"ts\":{ts_us}"
    ));
}

fn push_args(out: &mut String, args: &[(&'static str, ArgValue)]) {
    if args.is_empty() {
        return;
    }
    out.push_str(",\"args\":{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        push_escaped(out, k);
        out.push_str("\":");
        match v {
            ArgValue::Int(n) => out.push_str(&n.to_string()),
            ArgValue::UInt(n) => out.push_str(&n.to_string()),
            ArgValue::Float(f) => push_num(out, *f),
            ArgValue::Str(s) => {
                out.push('"');
                push_escaped(out, s);
                out.push('"');
            }
        }
    }
    out.push('}');
}

/// JSON has no NaN/Infinity literals; map them to `null`.
fn push_num(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{instant_with, span, take, test_lock};

    #[test]
    fn export_is_valid_and_balanced() {
        let _l = test_lock();
        let _ = take();
        crate::enable();
        crate::lane_name("main");
        {
            let _s = span("phase");
            instant_with(
                "mark",
                vec![("x", crate::ArgValue::Float(1.5)), ("s", "a\"b".into())],
            );
            crate::counter("gap", 0.25);
        }
        crate::disable();
        let text = to_chrome_trace(&take());
        let check = crate::validate::validate_chrome_trace(&text).expect("valid trace");
        assert_eq!(check.spans, 1);
        assert_eq!(check.instants, 1);
        assert_eq!(check.counters, 1);
    }

    #[test]
    fn non_finite_floats_export_as_null() {
        let mut s = String::new();
        push_num(&mut s, f64::INFINITY);
        assert_eq!(s, "null");
    }
}
