//! Structural validation of the observability artifacts — the checker
//! behind the `trace-check` binary, the CI trace-smoke job, and the
//! golden trace-format tests. Three document kinds are understood:
//! Chrome trace-event JSON, the metrics exposition (schema
//! `pipemap-metrics-v1`), and the solve report (schema
//! `pipemap-solve-report-v1`); [`validate_document`] dispatches on the
//! `schema` field.
//!
//! A trace passes when:
//!
//! * the document is valid JSON with a `traceEvents` array (or is
//!   itself a bare array of events);
//! * every event carries `ph`, `pid`, `tid`, and a non-negative `ts`
//!   (metadata `M` events excepted from the `ts` requirement);
//! * per `tid`, duration events balance: every `E` closes the `B` of
//!   the same name in LIFO order, and no span is left open.

use crate::json::{parse, Value};
use crate::metrics::METRICS_SCHEMA;
use crate::report::REPORT_SCHEMA;

/// Summary of a validated trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceCheck {
    /// Total events in the document.
    pub events: usize,
    /// Completed `B`/`E` span pairs.
    pub spans: usize,
    /// Instant (`i`) events.
    pub instants: usize,
    /// Counter (`C`) samples.
    pub counters: usize,
    /// Distinct lanes (`tid` values).
    pub lanes: usize,
    /// Deepest span nesting observed on any lane.
    pub max_depth: usize,
    /// Wall-clock covered by the events, in microseconds.
    pub wall_us: u64,
}

/// Validate a Chrome trace-event JSON document.
///
/// # Errors
///
/// Returns a message naming the first structural violation.
pub fn validate_chrome_trace(text: &str) -> Result<TraceCheck, String> {
    let doc = parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = match (&doc, doc.get("traceEvents")) {
        (_, Some(Value::Arr(evs))) => evs.as_slice(),
        (Value::Arr(evs), _) => evs.as_slice(),
        _ => return Err("no traceEvents array".into()),
    };

    let mut check = TraceCheck {
        events: events.len(),
        ..TraceCheck::default()
    };
    // (tid, name, ts) per event, grouped for the nesting check.
    let mut lanes: std::collections::BTreeMap<i64, Vec<(String, String)>> =
        std::collections::BTreeMap::new();
    let (mut ts_min, mut ts_max) = (u64::MAX, 0u64);
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?
            .to_string();
        let tid = ev
            .get("tid")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("event {i}: missing tid"))? as i64;
        ev.get("pid")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("event {i}: missing pid"))?;
        let name = ev
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?
            .to_string();
        if ph != "M" {
            let ts = ev
                .get("ts")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("event {i}: missing ts"))?;
            if !(ts.is_finite() && ts >= 0.0) {
                return Err(format!("event {i}: bad ts {ts}"));
            }
            ts_min = ts_min.min(ts as u64);
            ts_max = ts_max.max(ts as u64);
        }
        match ph.as_str() {
            "B" | "E" => lanes.entry(tid).or_default().push((ph, name)),
            "i" => {
                check.instants += 1;
                lanes.entry(tid).or_default();
            }
            "C" => {
                check.counters += 1;
                lanes.entry(tid).or_default();
            }
            "M" => {}
            other => return Err(format!("event {i}: unsupported ph {other:?}")),
        }
    }

    check.lanes = lanes.len();
    check.wall_us = if ts_min == u64::MAX {
        0
    } else {
        ts_max - ts_min
    };
    for (tid, evs) in &lanes {
        // Events arrive in per-lane chronological order (the recorder's
        // thread-local buffers guarantee it), so a plain stack suffices.
        let mut stack: Vec<&str> = Vec::new();
        for (ph, name) in evs {
            match ph.as_str() {
                "B" => {
                    stack.push(name);
                    check.max_depth = check.max_depth.max(stack.len());
                }
                "E" => match stack.pop() {
                    Some(open) if open == name => check.spans += 1,
                    Some(open) => {
                        return Err(format!(
                            "tid {tid}: E {name:?} closes B {open:?} (misnested)"
                        ))
                    }
                    None => return Err(format!("tid {tid}: E {name:?} without a B")),
                },
                _ => unreachable!("only B/E buffered"),
            }
        }
        if let Some(open) = stack.last() {
            return Err(format!("tid {tid}: span {open:?} never closed"));
        }
    }
    Ok(check)
}

/// Which artifact a document turned out to be, with its summary.
#[derive(Debug, Clone, PartialEq)]
pub enum DocumentCheck {
    /// A Chrome trace-event document.
    Trace(TraceCheck),
    /// A `pipemap-metrics-v1` exposition: `(metrics, histograms)`.
    Metrics(usize, usize),
    /// A `pipemap-solve-report-v1` document: `(phases, features)`.
    Report(usize, usize),
}

/// Validate any observability artifact, dispatching on its `schema`
/// field (documents without one are treated as Chrome traces).
///
/// # Errors
///
/// Returns a message naming the first structural violation.
pub fn validate_document(text: &str) -> Result<DocumentCheck, String> {
    let doc = parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    match doc.get("schema").and_then(Value::as_str) {
        Some(s) if s == METRICS_SCHEMA => {
            let (m, h) = validate_metrics_value(&doc)?;
            Ok(DocumentCheck::Metrics(m, h))
        }
        Some(s) if s == REPORT_SCHEMA => {
            let (p, f) = validate_report_value(&doc)?;
            Ok(DocumentCheck::Report(p, f))
        }
        Some(other) => Err(format!("unknown schema {other:?}")),
        None => validate_chrome_trace(text).map(DocumentCheck::Trace),
    }
}

/// Validate a `pipemap-metrics-v1` exposition. Returns
/// `(metric count, histogram count)`.
///
/// # Errors
///
/// Returns a message naming the first structural violation.
pub fn validate_metrics_json(text: &str) -> Result<(usize, usize), String> {
    let doc = parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    if doc.get("schema").and_then(Value::as_str) != Some(METRICS_SCHEMA) {
        return Err(format!("schema is not {METRICS_SCHEMA:?}"));
    }
    validate_metrics_value(&doc)
}

fn validate_metrics_value(doc: &Value) -> Result<(usize, usize), String> {
    let Some(Value::Obj(metrics)) = doc.get("metrics") else {
        return Err("no metrics object".into());
    };
    let mut hists = 0usize;
    for (name, m) in metrics {
        let ty = m
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("metric {name:?}: missing type"))?;
        match ty {
            "counter" => {
                let v = m
                    .get("value")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("counter {name:?}: missing value"))?;
                if v < 0.0 {
                    return Err(format!("counter {name:?}: negative value {v}"));
                }
            }
            "gauge" => {
                if m.get("value").is_none() {
                    return Err(format!("gauge {name:?}: missing value"));
                }
            }
            "histogram" => {
                hists += 1;
                let count = m
                    .get("count")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("histogram {name:?}: missing count"))?;
                if count < 0.0 {
                    return Err(format!("histogram {name:?}: negative count"));
                }
                let Some(buckets) = m.get("buckets").and_then(Value::as_arr) else {
                    return Err(format!("histogram {name:?}: missing buckets"));
                };
                let mut prev = f64::NEG_INFINITY;
                let mut total = 0.0;
                for (i, b) in buckets.iter().enumerate() {
                    let Some(pair) = b.as_arr().filter(|p| p.len() == 2) else {
                        return Err(format!(
                            "histogram {name:?}: bucket {i} is not a [bound, count] pair"
                        ));
                    };
                    // A null bound is the overflow (+Inf) bucket.
                    if let Some(bound) = pair[0].as_f64() {
                        if bound <= prev {
                            return Err(format!(
                                "histogram {name:?}: bucket bounds not ascending at {i}"
                            ));
                        }
                        prev = bound;
                    } else {
                        prev = f64::INFINITY;
                    }
                    let c = pair[1]
                        .as_f64()
                        .ok_or_else(|| format!("histogram {name:?}: bucket {i} count"))?;
                    if c < 0.0 {
                        return Err(format!("histogram {name:?}: negative bucket count"));
                    }
                    total += c;
                }
                if (total - count).abs() > 0.5 {
                    return Err(format!(
                        "histogram {name:?}: bucket counts sum to {total}, count says {count}"
                    ));
                }
            }
            other => return Err(format!("metric {name:?}: unknown type {other:?}")),
        }
    }
    Ok((metrics.len(), hists))
}

/// Validate a `pipemap-solve-report-v1` document: required fields
/// present, phase times non-negative, phase sum within tolerance of the
/// reported wall clock. Returns `(phase count, feature count)`.
///
/// # Errors
///
/// Returns a message naming the first structural violation.
pub fn validate_solve_report(text: &str) -> Result<(usize, usize), String> {
    let doc = parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    if doc.get("schema").and_then(Value::as_str) != Some(REPORT_SCHEMA) {
        return Err(format!("schema is not {REPORT_SCHEMA:?}"));
    }
    validate_report_value(&doc)
}

fn validate_report_value(doc: &Value) -> Result<(usize, usize), String> {
    let wall = doc
        .get("wall_us")
        .and_then(Value::as_f64)
        .ok_or("missing wall_us")?;
    if wall < 0.0 {
        return Err(format!("negative wall_us {wall}"));
    }
    let mut phase_count = 0usize;
    for key in ["phases", "solve_phases"] {
        let Some(phases) = doc.get(key).and_then(Value::as_arr) else {
            return Err(format!("missing {key} array"));
        };
        let mut sum = 0.0;
        for (i, p) in phases.iter().enumerate() {
            if p.get("name").and_then(Value::as_str).is_none() {
                return Err(format!("{key}[{i}]: missing name"));
            }
            let t = p
                .get("total_us")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("{key}[{i}]: missing total_us"))?;
            if t < 0.0 {
                return Err(format!("{key}[{i}]: negative total_us {t}"));
            }
            sum += t;
        }
        if key == "phases" {
            phase_count = phases.len();
            // Phase attribution must reconcile with the wall clock:
            // 5% + a fixed slack for timestamp rounding on tiny solves.
            if sum > wall * 1.05 + 1000.0 {
                return Err(format!(
                    "phases sum to {sum} us, exceeding wall {wall} us by more than 5%"
                ));
            }
        }
    }
    let Some(features) = doc.get("features").and_then(Value::as_arr) else {
        return Err("missing features array".into());
    };
    for (i, f) in features.iter().enumerate() {
        if f.get("name").and_then(Value::as_str).is_none() {
            return Err(format!("features[{i}]: missing name"));
        }
        if f.get("value").is_none() {
            return Err(format!("features[{i}]: missing value"));
        }
    }
    for key in ["workers", "cut_rounds", "incumbents", "diagnosis"] {
        if doc.get(key).and_then(Value::as_arr).is_none() {
            return Err(format!("missing {key} array"));
        }
    }
    let dropped = doc
        .get("dropped_events")
        .and_then(Value::as_f64)
        .ok_or("missing dropped_events")?;
    if dropped < 0.0 {
        return Err("negative dropped_events".into());
    }
    Ok((phase_count, features.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_balanced_trace() {
        let t = r#"{"traceEvents":[
            {"name":"a","ph":"B","pid":1,"tid":0,"ts":0},
            {"name":"b","ph":"B","pid":1,"tid":0,"ts":1},
            {"name":"b","ph":"E","pid":1,"tid":0,"ts":2},
            {"name":"m","ph":"i","pid":1,"tid":1,"ts":2,"s":"t"},
            {"name":"a","ph":"E","pid":1,"tid":0,"ts":3},
            {"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"main"}}
        ]}"#;
        let c = validate_chrome_trace(t).expect("valid");
        assert_eq!(c.spans, 2);
        assert_eq!(c.instants, 1);
        assert_eq!(c.lanes, 2);
        assert_eq!(c.max_depth, 2);
        assert_eq!(c.wall_us, 3);
    }

    #[test]
    fn rejects_misnesting_and_orphans() {
        let misnested = r#"[{"name":"a","ph":"B","pid":1,"tid":0,"ts":0},
            {"name":"b","ph":"E","pid":1,"tid":0,"ts":1}]"#;
        assert!(validate_chrome_trace(misnested).is_err());
        let unclosed = r#"[{"name":"a","ph":"B","pid":1,"tid":0,"ts":0}]"#;
        assert!(validate_chrome_trace(unclosed).is_err());
        let orphan = r#"[{"name":"a","ph":"E","pid":1,"tid":0,"ts":0}]"#;
        assert!(validate_chrome_trace(orphan).is_err());
        assert!(validate_chrome_trace("not json").is_err());
    }

    #[test]
    fn metrics_schema_checks() {
        let good = r#"{"schema": "pipemap-metrics-v1", "metrics": {
            "a.count": {"type": "counter", "value": 3},
            "a.gauge": {"type": "gauge", "value": 1.5},
            "a.hist": {"type": "histogram", "count": 3, "sum": 6.0,
                       "buckets": [[2.0, 1], [4.0, 2]]}}}"#;
        assert_eq!(validate_metrics_json(good), Ok((3, 1)));
        assert!(matches!(
            validate_document(good),
            Ok(DocumentCheck::Metrics(3, 1))
        ));
        let neg = r#"{"schema": "pipemap-metrics-v1", "metrics": {
            "c": {"type": "counter", "value": -1}}}"#;
        assert!(validate_metrics_json(neg).is_err());
        let mismatch = r#"{"schema": "pipemap-metrics-v1", "metrics": {
            "h": {"type": "histogram", "count": 5, "sum": 1.0,
                  "buckets": [[2.0, 1]]}}}"#;
        assert!(validate_metrics_json(mismatch)
            .unwrap_err()
            .contains("sum to"));
        let unordered = r#"{"schema": "pipemap-metrics-v1", "metrics": {
            "h": {"type": "histogram", "count": 2, "sum": 1.0,
                  "buckets": [[4.0, 1], [2.0, 1]]}}}"#;
        assert!(validate_metrics_json(unordered).is_err());
    }

    #[test]
    fn report_schema_checks() {
        let good = r#"{"schema": "pipemap-solve-report-v1", "wall_us": 1000,
            "phases": [{"name": "solve", "total_us": 990, "count": 1}],
            "solve_phases": [], "features": [{"name": "branching", "value": 2.0}],
            "workers": [], "cut_rounds": [], "incumbents": [],
            "dropped_events": 0, "diagnosis": []}"#;
        assert_eq!(validate_solve_report(good), Ok((1, 1)));
        assert!(matches!(
            validate_document(good),
            Ok(DocumentCheck::Report(1, 1))
        ));
        let over = good.replace("\"total_us\": 990", "\"total_us\": 99000");
        assert!(validate_solve_report(&over).unwrap_err().contains("5%"));
        let neg = good.replace("\"total_us\": 990", "\"total_us\": -5");
        assert!(validate_solve_report(&neg).is_err());
        let missing = good.replace("\"features\"", "\"featurez\"");
        assert!(validate_solve_report(&missing).is_err());
    }
}
