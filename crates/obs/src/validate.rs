//! Structural validation of Chrome trace-event JSON — the checker
//! behind the `trace-check` binary, the CI trace-smoke job, and the
//! golden trace-format tests.
//!
//! A trace passes when:
//!
//! * the document is valid JSON with a `traceEvents` array (or is
//!   itself a bare array of events);
//! * every event carries `ph`, `pid`, `tid`, and a non-negative `ts`
//!   (metadata `M` events excepted from the `ts` requirement);
//! * per `tid`, duration events balance: every `E` closes the `B` of
//!   the same name in LIFO order, and no span is left open.

use crate::json::{parse, Value};

/// Summary of a validated trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceCheck {
    /// Total events in the document.
    pub events: usize,
    /// Completed `B`/`E` span pairs.
    pub spans: usize,
    /// Instant (`i`) events.
    pub instants: usize,
    /// Counter (`C`) samples.
    pub counters: usize,
    /// Distinct lanes (`tid` values).
    pub lanes: usize,
    /// Deepest span nesting observed on any lane.
    pub max_depth: usize,
    /// Wall-clock covered by the events, in microseconds.
    pub wall_us: u64,
}

/// Validate a Chrome trace-event JSON document.
///
/// # Errors
///
/// Returns a message naming the first structural violation.
pub fn validate_chrome_trace(text: &str) -> Result<TraceCheck, String> {
    let doc = parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = match (&doc, doc.get("traceEvents")) {
        (_, Some(Value::Arr(evs))) => evs.as_slice(),
        (Value::Arr(evs), _) => evs.as_slice(),
        _ => return Err("no traceEvents array".into()),
    };

    let mut check = TraceCheck {
        events: events.len(),
        ..TraceCheck::default()
    };
    // (tid, name, ts) per event, grouped for the nesting check.
    let mut lanes: std::collections::BTreeMap<i64, Vec<(String, String)>> =
        std::collections::BTreeMap::new();
    let (mut ts_min, mut ts_max) = (u64::MAX, 0u64);
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?
            .to_string();
        let tid = ev
            .get("tid")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("event {i}: missing tid"))? as i64;
        ev.get("pid")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("event {i}: missing pid"))?;
        let name = ev
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?
            .to_string();
        if ph != "M" {
            let ts = ev
                .get("ts")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("event {i}: missing ts"))?;
            if !(ts.is_finite() && ts >= 0.0) {
                return Err(format!("event {i}: bad ts {ts}"));
            }
            ts_min = ts_min.min(ts as u64);
            ts_max = ts_max.max(ts as u64);
        }
        match ph.as_str() {
            "B" | "E" => lanes.entry(tid).or_default().push((ph, name)),
            "i" => {
                check.instants += 1;
                lanes.entry(tid).or_default();
            }
            "C" => {
                check.counters += 1;
                lanes.entry(tid).or_default();
            }
            "M" => {}
            other => return Err(format!("event {i}: unsupported ph {other:?}")),
        }
    }

    check.lanes = lanes.len();
    check.wall_us = if ts_min == u64::MAX {
        0
    } else {
        ts_max - ts_min
    };
    for (tid, evs) in &lanes {
        // Events arrive in per-lane chronological order (the recorder's
        // thread-local buffers guarantee it), so a plain stack suffices.
        let mut stack: Vec<&str> = Vec::new();
        for (ph, name) in evs {
            match ph.as_str() {
                "B" => {
                    stack.push(name);
                    check.max_depth = check.max_depth.max(stack.len());
                }
                "E" => match stack.pop() {
                    Some(open) if open == name => check.spans += 1,
                    Some(open) => {
                        return Err(format!(
                            "tid {tid}: E {name:?} closes B {open:?} (misnested)"
                        ))
                    }
                    None => return Err(format!("tid {tid}: E {name:?} without a B")),
                },
                _ => unreachable!("only B/E buffered"),
            }
        }
        if let Some(open) = stack.last() {
            return Err(format!("tid {tid}: span {open:?} never closed"));
        }
    }
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_balanced_trace() {
        let t = r#"{"traceEvents":[
            {"name":"a","ph":"B","pid":1,"tid":0,"ts":0},
            {"name":"b","ph":"B","pid":1,"tid":0,"ts":1},
            {"name":"b","ph":"E","pid":1,"tid":0,"ts":2},
            {"name":"m","ph":"i","pid":1,"tid":1,"ts":2,"s":"t"},
            {"name":"a","ph":"E","pid":1,"tid":0,"ts":3},
            {"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"main"}}
        ]}"#;
        let c = validate_chrome_trace(t).expect("valid");
        assert_eq!(c.spans, 2);
        assert_eq!(c.instants, 1);
        assert_eq!(c.lanes, 2);
        assert_eq!(c.max_depth, 2);
        assert_eq!(c.wall_us, 3);
    }

    #[test]
    fn rejects_misnesting_and_orphans() {
        let misnested = r#"[{"name":"a","ph":"B","pid":1,"tid":0,"ts":0},
            {"name":"b","ph":"E","pid":1,"tid":0,"ts":1}]"#;
        assert!(validate_chrome_trace(misnested).is_err());
        let unclosed = r#"[{"name":"a","ph":"B","pid":1,"tid":0,"ts":0}]"#;
        assert!(validate_chrome_trace(unclosed).is_err());
        let orphan = r#"[{"name":"a","ph":"E","pid":1,"tid":0,"ts":0}]"#;
        assert!(validate_chrome_trace(orphan).is_err());
        assert!(validate_chrome_trace("not json").is_err());
    }
}
