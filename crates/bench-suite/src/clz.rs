//! CLZ — count leading zeros (paper Table 1, kernel).
//!
//! The classic branchless binary-search ladder: at each level the upper
//! half of the remaining word is tested for non-zero bits; a mux keeps
//! either half and the count accumulates. The paper's version counts a
//! 64-bit value (387 LLVM instrs); the default here is 32 bits to fit the
//! from-scratch MILP solver.

use pipemap_ir::{CmpPred, DfgBuilder, Target};

use crate::{BenchClass, Benchmark};

/// Build the CLZ kernel for a power-of-two width.
///
/// # Panics
///
/// Panics unless `width` is a power of two in `2..=64`.
pub fn clz(width: u32) -> Benchmark {
    assert!(
        width.is_power_of_two() && (2..=64).contains(&width),
        "width must be a power of two in 2..=64"
    );
    let cw = width.trailing_zeros() + 1; // count word width (e.g. 6 for 32)
    let mut b = DfgBuilder::new(format!("clz{width}"));
    let x0 = b.input("x", width);

    let mut x = x0;
    let mut count = b.const_(0, cw);
    let mut step = width / 2;
    while step >= 1 {
        // hi = x >> step; any = (hi != 0)
        let hi = b.shr(x, step);
        let zero = b.const_(0, width);
        let any = b.cmp(CmpPred::Ne, hi, zero);
        b.name_node(any, format!("any{step}"));
        // If the upper half is non-zero, discard the lower half; otherwise
        // the upper half is all zeros and contributes `step` to the count.
        let step_c = b.const_(u64::from(step), cw);
        let zero_c = b.const_(0, cw);
        let add = b.mux(any, zero_c, step_c);
        let nc = b.add(count, add);
        count = nc;
        let keep = b.mux(any, hi, x);
        x = keep;
        step /= 2;
    }
    // Final bit: if the remaining value's LSB is 0, the word was all zero
    // in the inspected positions; add 1 more when x == 0.
    let lsb = b.bit(x, 0);
    let one = b.const_(1, 1);
    let isz = b.xor(lsb, one); // x is 0 or 1 here
    let ext = b.zext(isz, cw);
    let total = b.add(count, ext);
    b.output("clz", total);

    Benchmark {
        name: "CLZ",
        class: BenchClass::Kernel,
        domain: "Kernel",
        description: "Count the number of leading zeros in a value",
        dfg: b.finish().expect("clz graph is valid"),
        target: Target::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_ir::{execute, InputStreams};

    fn run_clz(width: u32, vals: &[u64]) -> Vec<u64> {
        let bench = clz(width);
        let g = &bench.dfg;
        let mut ins = InputStreams::new();
        ins.set(g.inputs()[0], vals.to_vec());
        let t = execute(g, &ins, vals.len()).expect("executes");
        let out = g.outputs()[0];
        (0..vals.len()).map(|k| t.value(k, out)).collect()
    }

    #[test]
    fn matches_hardware_semantics_32() {
        let vals = [0u64, 1, 2, 3, 0x8000_0000, 0x7FFF_FFFF, 0xFFFF_FFFF, 42];
        let got = run_clz(32, &vals);
        let expected: Vec<u64> = vals
            .iter()
            .map(|&v| u64::from((v as u32).leading_zeros()))
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn matches_hardware_semantics_16_random() {
        let mut state = 123u64;
        let vals: Vec<u64> = (0..50)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 40) & 0xFFFF
            })
            .collect();
        let got = run_clz(16, &vals);
        let expected: Vec<u64> = vals
            .iter()
            .map(|&v| u64::from((v as u16).leading_zeros()))
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn pure_logic_kernel() {
        let b = clz(32);
        assert_eq!(b.dfg.stats().black_box_ops, 0);
        assert_eq!(b.dfg.stats().loop_carried_edges, 0);
    }
}
