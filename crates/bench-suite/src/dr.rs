//! DR — digit recognition by k-nearest neighbours (paper Table 1, machine
//! learning).
//!
//! Each iteration streams in a 16-bit query bitmap and an index; two
//! training bitmaps are fetched from a dual-ported ROM, Hamming distances
//! are computed (xor + popcount adder trees — the dominant logic cloud),
//! and the nearer neighbour's distance and label are selected.

use pipemap_ir::{DfgBuilder, NodeId, Target};

use crate::{BenchClass, Benchmark};

const BITMAP_W: u32 = 16;
const DIST_W: u32 = 5; // popcount of 16 bits fits in 5 bits

/// The training set: `(bitmap, label)` pairs baked into ROMs.
pub fn training_set() -> Vec<(u16, u8)> {
    // Tiny stylized "digits": vertical bar, horizontal bar, checkerboard,
    // solid, corners, cross, L-shape, ring.
    vec![
        (0x1111, 0),
        (0x000F, 1),
        (0x5A5A, 2),
        (0xFFFF, 3),
        (0x9009, 4),
        (0x0660, 5),
        (0x1117, 6),
        (0xF99F, 7),
    ]
}

/// Popcount of a 16-bit value as a nibble-wise adder tree.
fn popcount16(b: &mut DfgBuilder, v: NodeId) -> NodeId {
    // Per nibble: sum of the four bits, zero-extended as it grows.
    let mut nibble_counts = Vec::new();
    for n in 0..4 {
        let bits: Vec<NodeId> = (0..4).map(|i| b.bit(v, n * 4 + i)).collect();
        let b0 = b.zext(bits[0], 3);
        let b1 = b.zext(bits[1], 3);
        let b2 = b.zext(bits[2], 3);
        let b3 = b.zext(bits[3], 3);
        let s01 = b.add(b0, b1);
        let s23 = b.add(b2, b3);
        let s = b.add(s01, s23);
        nibble_counts.push(b.zext(s, DIST_W));
    }
    let a = b.add(nibble_counts[0], nibble_counts[1]);
    let c = b.add(nibble_counts[2], nibble_counts[3]);
    b.add(a, c)
}

/// Build the DR benchmark.
pub fn dr() -> Benchmark {
    let mut b = DfgBuilder::new("digit_rec");
    let query = b.input("query", BITMAP_W);
    let idx = b.input("idx", 2); // selects a pair of training samples

    let train = training_set();
    let bitmaps = b.add_memory(
        "train_bitmaps",
        BITMAP_W,
        train.iter().map(|&(bm, _)| u64::from(bm)).collect(),
    );
    let labels = b.add_memory(
        "train_labels",
        8,
        train.iter().map(|&(_, l)| u64::from(l)).collect(),
    );

    // Two candidates per iteration: addresses 2*idx and 2*idx + 1.
    let idx3 = b.zext(idx, 3);
    let addr0 = b.shl(idx3, 1);
    let one = b.const_(1, 3);
    let addr1 = b.or(addr0, one);

    let mut cands = Vec::new();
    for addr in [addr0, addr1] {
        let bm = b.load(bitmaps, addr);
        let diff = b.xor(query, bm);
        let dist = popcount16(&mut b, diff);
        let label = b.load(labels, addr);
        cands.push((dist, label));
    }
    let (d0, l0) = cands[0];
    let (d1, l1) = cands[1];
    let nearer = b.cmp(pipemap_ir::CmpPred::Ule, d0, d1);
    let best_d = b.mux(nearer, d0, d1);
    let best_l = b.mux(nearer, l0, l1);
    b.output("distance", best_d);
    b.output("label", best_l);

    Benchmark {
        name: "DR",
        class: BenchClass::Application,
        domain: "Machine Learning",
        description: "Digit recognition using k-nearest neighbours",
        dfg: b.finish().expect("dr graph is valid"),
        target: Target::default(),
    }
}

/// Software reference model: returns `(distance, label)`.
pub fn soft_dr(query: u16, idx: u8) -> (u32, u8) {
    let train = training_set();
    let a0 = (idx as usize * 2) % train.len();
    let a1 = (idx as usize * 2 + 1) % train.len();
    let d0 = (query ^ train[a0].0).count_ones();
    let d1 = (query ^ train[a1].0).count_ones();
    if d0 <= d1 {
        (d0, train[a0].1)
    } else {
        (d1, train[a1].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_ir::{execute, InputStreams};

    #[test]
    fn graph_matches_soft_model() {
        let bench = dr();
        let g = &bench.dfg;
        let cases: [(u16, u8); 6] = [
            (0x1111, 0),
            (0x000E, 0),
            (0xFFFF, 1),
            (0x5A5B, 1),
            (0x9119, 2),
            (0x0000, 3),
        ];
        let mut ins = InputStreams::new();
        ins.set(
            g.inputs()[0],
            cases.iter().map(|c| u64::from(c.0)).collect(),
        );
        ins.set(
            g.inputs()[1],
            cases.iter().map(|c| u64::from(c.1)).collect(),
        );
        let t = execute(g, &ins, cases.len()).expect("executes");
        let outs = g.outputs();
        for (k, &(q, i)) in cases.iter().enumerate() {
            let (d, l) = soft_dr(q, i);
            assert_eq!(t.value(k, outs[0]), u64::from(d), "distance case {k}");
            assert_eq!(t.value(k, outs[1]), u64::from(l), "label case {k}");
        }
    }

    #[test]
    fn reads_are_within_port_budget() {
        // 2 bitmap reads on one ROM + 2 label reads on the other = 2 ports
        // each at II = 1.
        let bench = dr();
        let s = bench.dfg.stats();
        assert_eq!(s.black_box_ops, 4);
        assert_eq!(bench.dfg.memories().len(), 2);
    }
}
