//! MILP solver benchmark harness: runs the mapping-aware MILP flow on
//! the Table 1 suite twice in the same process — once with the cold
//! serial solver (no presolve, no warm starts, no structural analysis,
//! one thread) and once with the full optimized pipeline (presolve, warm
//! starts, probing, certified cuts, Gomory tableau cuts, orbital fixing,
//! feedback-guided incumbent decomposition) — asserts the
//! objectives are identical, and writes the timings plus solver counters
//! to `BENCH_milp.json`.
//!
//! Exit status is non-zero when any benchmark's optimized objective
//! diverges from the baseline: the performance work must never change
//! the optimum.
//!
//! The `resolve` sub-mode instead benchmarks the *incremental re-solve
//! engine*: it replays an II × K × weight design-space sweep twice —
//! once rebuilding and cold-solving every point, once editing one
//! `ResolveContext` per structural base in place — asserts the two
//! paths report identical objectives on every completed point, times a
//! clone-vs-incremental A/B of the `--decompose` sub-solve rounds, and
//! writes `BENCH_resolve.json`.
//!
//! ```text
//! cargo run -p pipemap-bench-suite -- --quick --jobs 2
//! cargo run -p pipemap-bench-suite -- resolve --quick
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

mod compare;

use pipemap_bench_suite::{all, Benchmark};
use pipemap_core::{
    milp_map_model_size_raw, run_flow, run_sweep, Flow, FlowOptions, FlowResult, MilpStats,
    SweepConfig,
};
use pipemap_milp::Status;

struct Args {
    mode: Mode,
    quick: bool,
    jobs: usize,
    out: String,
    time_limit: u64,
    only: Option<String>,
    skip_cold: bool,
    overhead_check: bool,
    gap_closers: bool,
    compare_files: Vec<String>,
    wall_tol_pct: f64,
    allow_missing: bool,
    no_history: bool,
}

#[derive(PartialEq, Clone, Copy)]
enum Mode {
    Milp,
    Resolve,
    Compare,
}

fn parse_args() -> Args {
    let mut args = Args {
        mode: Mode::Milp,
        quick: false,
        jobs: 1,
        out: String::new(), // defaulted per mode below
        time_limit: 0,      // 0 = pick by mode below
        only: None,
        skip_cold: false,
        overhead_check: false,
        gap_closers: true,
        compare_files: Vec::new(),
        wall_tol_pct: 50.0,
        allow_missing: false,
        no_history: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "milp" => args.mode = Mode::Milp,
            "resolve" => args.mode = Mode::Resolve,
            "compare" => args.mode = Mode::Compare,
            "--wall-tol-pct" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage("--wall-tol-pct needs a percentage"));
                args.wall_tol_pct = v
                    .parse()
                    .unwrap_or_else(|_| usage("--wall-tol-pct needs a number"));
            }
            "--allow-missing" => args.allow_missing = true,
            "--no-history" => args.no_history = true,
            "--quick" => args.quick = true,
            "--jobs" => {
                let v = it.next().unwrap_or_else(|| usage("--jobs needs a value"));
                args.jobs = v
                    .parse()
                    .unwrap_or_else(|_| usage("--jobs needs an integer"));
            }
            "--out" => {
                args.out = it.next().unwrap_or_else(|| usage("--out needs a path"));
            }
            "--bench" => {
                args.only = Some(it.next().unwrap_or_else(|| usage("--bench needs a name")));
            }
            "--skip-cold" => args.skip_cold = true,
            "--overhead-check" => args.overhead_check = true,
            "--gap-closers" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage("--gap-closers needs on|off"));
                args.gap_closers = match v.as_str() {
                    "on" => true,
                    "off" => false,
                    _ => usage("--gap-closers needs on|off"),
                };
            }
            "--time-limit" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage("--time-limit needs seconds"));
                args.time_limit = v
                    .parse()
                    .unwrap_or_else(|_| usage("--time-limit needs an integer"));
            }
            "--help" | "-h" => {
                println!(
                    "pipemap-bench-suite: cold-vs-optimized MILP solve benchmark\n\n\
                     USAGE: pipemap-bench-suite [milp|resolve] [--quick] [--jobs N] [--out PATH] [--time-limit S]\n\n\
                     milp           cold-vs-optimized solver A/B over the Table 1 suite (default)\n\
                     resolve        incremental re-solve engine benchmark: II*K*weight sweep\n\
                     \x20              cold vs in-place re-solves, plus a --decompose round-time A/B\n\
                     compare BASELINE.json CANDIDATE.json\n\
                     \x20              regression gate between two milp-mode reports; exits non-zero\n\
                     \x20              when the candidate regresses (status, objective, gap, model\n\
                     \x20              size tight; wall-clock and node counts generous)\n\
                     --wall-tol-pct P  compare: extra wall-clock allowance in percent (default 50)\n\
                     --allow-missing   compare: skip baseline benchmarks absent from the candidate\n\
                     --no-history   skip appending this run to results/bench_history.jsonl\n\
                     --quick        kernels only with a short solver budget (CI smoke)\n\
                     --jobs N       worker threads for the optimized pass, capped at the core count (default 1; 0 = all cores)\n\
                     --out PATH     JSON report path (default BENCH_milp.json / BENCH_resolve.json)\n\
                     --bench NAME   run a single benchmark by Table 1 name\n\
                     --time-limit S per-solve wall-clock budget in seconds\n\
                     --gap-closers on|off  Gomory cuts + incumbent decomposition in the optimized pass (default on)\n\
                     --overhead-check  assert disabled-mode tracing overhead and\n\
                     \x20              metrics-enabled-but-unexported overhead are each < 2%, then exit"
                );
                std::process::exit(0);
            }
            other if args.mode == Mode::Compare && !other.starts_with('-') => {
                args.compare_files.push(other.to_string());
            }
            other => usage(&format!("unknown argument {other}")),
        }
    }
    if args.time_limit == 0 {
        args.time_limit = match args.mode {
            Mode::Milp => {
                if args.quick {
                    20
                } else {
                    60
                }
            }
            Mode::Resolve => {
                if args.quick {
                    5
                } else {
                    15
                }
            }
            Mode::Compare => 1,
        };
    }
    if args.out.is_empty() {
        args.out = match args.mode {
            Mode::Milp | Mode::Compare => "BENCH_milp.json".to_string(),
            Mode::Resolve => "BENCH_resolve.json".to_string(),
        };
    }
    if args.jobs == 0 {
        args.jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
    }
    args
}

fn usage(msg: &str) -> ! {
    eprintln!("pipemap-bench-suite: {msg} (try --help)");
    std::process::exit(2);
}

/// Assert the cost of *disabled* tracing instrumentation is negligible:
/// run one benchmark with tracing enabled to count how many events its
/// instrumentation sites emit, measure the per-call cost of a disabled
/// site (one relaxed atomic load), and bound the disabled-mode overhead
/// by `per_call * events / wall`. Exits non-zero above 2%.
fn overhead_check(benches: &[Benchmark], budget: Duration) -> ! {
    let b = &benches[0];
    let opts = FlowOptions {
        time_limit: budget,
        ..FlowOptions::default()
    };
    pipemap_obs::enable();
    let start = Instant::now();
    let run = run_flow(&b.dfg, &b.target, Flow::MilpMap, &opts);
    let wall = start.elapsed();
    pipemap_obs::disable();
    let trace = pipemap_obs::take();
    if let Err(e) = run {
        eprintln!("[bench] overhead-check: {} failed: {e}", b.name);
        std::process::exit(1);
    }
    // Spans emit two events per site; counting one disabled check per
    // *event* therefore over-estimates the number of sites hit.
    let sites = trace.events.len() + trace.dropped;

    const PROBES: u32 = 10_000_000;
    let t0 = Instant::now();
    for _ in 0..PROBES {
        let g = pipemap_obs::span("overhead-probe");
        std::hint::black_box(&g);
    }
    let per_call_ns = t0.elapsed().as_nanos() as f64 / f64::from(PROBES);

    let overhead = per_call_ns * sites as f64 / (wall.as_nanos() as f64).max(1.0);
    eprintln!(
        "[bench] overhead-check: {} emitted {sites} event(s) in {:.1} ms; \
         disabled site costs {per_call_ns:.1} ns -> {:.4}% of wall (limit 2%)",
        b.name,
        ms(wall),
        overhead * 100.0
    );
    if overhead >= 0.02 {
        eprintln!("[bench] overhead-check FAILED: disabled-mode tracing overhead >= 2%");
        std::process::exit(1);
    }

    // Second probe: metrics enabled but never exported. Run the same
    // benchmark with the registry live to count how many counter
    // increments and histogram/gauge records the solve performs, measure
    // the per-record cost (atomic fetch-adds on a leaked handle), and
    // bound the overhead by `per_record * updates / wall`.
    use pipemap_obs::metrics::{self, MetricValue};
    metrics::reset();
    metrics::enable();
    let start = Instant::now();
    let run = run_flow(&b.dfg, &b.target, Flow::MilpMap, &opts);
    let wall_m = start.elapsed();
    metrics::disable();
    let snap = metrics::snapshot();
    metrics::reset();
    if let Err(e) = run {
        eprintln!("[bench] overhead-check (metrics): {} failed: {e}", b.name);
        std::process::exit(1);
    }
    // Gauges overwrite rather than accumulate, so their update counts
    // are invisible in the snapshot; counting each as one update
    // under-states them, but gauge sets are O(1) per solve while
    // counters and histograms fire per LP iteration / node / cut.
    let updates: u64 = snap
        .metrics
        .iter()
        .map(|(_, v)| match v {
            MetricValue::Counter(c) => *c,
            MetricValue::Gauge(_) => 1,
            MetricValue::Histogram(h) => h.count,
        })
        .sum();
    let h = metrics::histogram("overhead-probe");
    let t0 = Instant::now();
    for i in 0..PROBES {
        h.record(f64::from(i % 97));
    }
    let per_record_ns = t0.elapsed().as_nanos() as f64 / f64::from(PROBES);
    metrics::reset();
    let m_overhead = per_record_ns * updates as f64 / (wall_m.as_nanos() as f64).max(1.0);
    eprintln!(
        "[bench] overhead-check: {} performed {updates} metric update(s) in {:.1} ms; \
         one record costs {per_record_ns:.1} ns -> {:.4}% of wall (limit 2%)",
        b.name,
        ms(wall_m),
        m_overhead * 100.0
    );
    if m_overhead >= 0.02 {
        eprintln!("[bench] overhead-check FAILED: metrics-enabled overhead >= 2%");
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// One measured solve: wall-clock plus the solver counters.
struct Measured {
    name: &'static str,
    wall: Duration,
    milp: MilpStats,
}

fn measure(b: &Benchmark, opts: &FlowOptions) -> Result<Measured, String> {
    let start = Instant::now();
    let r: FlowResult =
        run_flow(&b.dfg, &b.target, Flow::MilpMap, opts).map_err(|e| format!("{}: {e}", b.name))?;
    let wall = start.elapsed();
    let milp = r
        .milp
        .ok_or_else(|| format!("{}: MILP flow returned no solver stats", b.name))?;
    Ok(Measured {
        name: b.name,
        wall,
        milp,
    })
}

/// Run `f` over the benchmarks on `jobs` scoped worker threads (atomic
/// work index), collecting results back in suite order.
///
/// The worker count is capped at the machine's available parallelism:
/// fanning more concurrent time-limited solves than there are cores
/// time-slices each benchmark's wall-clock budget into a fraction of
/// real compute, while the serial cold baseline enjoys a whole core —
/// distorting every per-benchmark wall, node count, and gap in the
/// comparison. `--jobs` is an upper bound, not a demand.
fn fan_out<F>(benches: &[Benchmark], jobs: usize, f: F) -> Vec<Result<Measured, String>>
where
    F: Fn(&Benchmark) -> Result<Measured, String> + Sync,
{
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<Measured, String>>>> =
        benches.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs.max(1).min(benches.len().max(1)).min(cores) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(b) = benches.get(i) else { break };
                let r = f(b);
                *slots[i].lock().expect("slot") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("slot").expect("worker filled slot"))
        .collect()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// JSON has no infinities; map them to `null`.
fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Sum the wall-clock of every completed span with one of `names`,
/// matching Begin/End pairs per lane. Nested same-name spans on one
/// lane stack correctly; an unclosed span contributes nothing.
fn span_total_ms(trace: &pipemap_obs::Trace, names: &[&str]) -> f64 {
    use std::collections::HashMap;
    let mut open: HashMap<(u32, &str), Vec<u64>> = HashMap::new();
    let mut total_us = 0u64;
    for e in &trace.events {
        let Some(&n) = names.iter().find(|&&n| n == e.name.as_ref()) else {
            continue;
        };
        match e.kind {
            pipemap_obs::EventKind::Begin => open.entry((e.lane, n)).or_default().push(e.ts_us),
            pipemap_obs::EventKind::End => {
                if let Some(t0) = open.get_mut(&(e.lane, n)).and_then(Vec::pop) {
                    total_us += e.ts_us.saturating_sub(t0);
                }
            }
            _ => {}
        }
    }
    total_us as f64 / 1e3
}

/// One `--decompose` flow run with tracing on, reduced to the numbers
/// the A/B needs: wall-clock of the decompose rounds (refinement span +
/// partition-bound span) and the sub-solve counters.
struct DecomposeRun {
    round_ms: f64,
    subproblems: usize,
    resolve_solves: Option<usize>,
    objective: f64,
}

fn run_decompose_ab(
    b: &Benchmark,
    budget: Duration,
    incremental: bool,
) -> Result<DecomposeRun, String> {
    let opts = FlowOptions {
        time_limit: budget,
        jobs: 1,
        priority_cuts: true,
        decompose: true,
        resolve: incremental,
        ..FlowOptions::default()
    };
    pipemap_obs::enable();
    let run = run_flow(&b.dfg, &b.target, Flow::MilpMap, &opts);
    pipemap_obs::disable();
    let trace = pipemap_obs::take();
    let r = run.map_err(|e| format!("{}: {e}", b.name))?;
    let milp = r
        .milp
        .ok_or_else(|| format!("{}: no solver stats", b.name))?;
    Ok(DecomposeRun {
        round_ms: span_total_ms(&trace, &["decompose", "partition-bound"]),
        subproblems: milp.subproblems_solved,
        resolve_solves: milp.resolve.map(|s| s.solves),
        objective: milp.objective,
    })
}

/// The `resolve` sub-mode: benchmark the incremental re-solve engine.
fn resolve_main(args: &Args) -> ! {
    let mut benches = all();
    if args.quick {
        benches.retain(|b| b.name == "CLZ");
    } else if args.only.is_none() {
        // The sweep set: four model shapes where the engine's reuse
        // levers genuinely apply — II does not bind these kernels, so
        // consecutive II values formulate identical bases and dedup can
        // replay them. On II-binding models (e.g. GSM) every point that
        // hits the per-point budget costs the full budget on *both*
        // sides, so sweep wall-clock is cap-bound and no re-solve
        // engine can improve it; those shapes are still covered by the
        // full-suite decompose A/B below and `--bench NAME`.
        benches.retain(|b| ["CLZ", "XORR", "GFMUL", "CORDIC"].contains(&b.name));
    }
    if let Some(name) = &args.only {
        benches.retain(|b| b.name.eq_ignore_ascii_case(name));
        if benches.is_empty() {
            usage(&format!("unknown benchmark {name}"));
        }
    }
    let budget = Duration::from_secs(args.time_limit);
    let cfg_base = SweepConfig {
        time_limit: budget,
        jobs: args.jobs,
        ..SweepConfig::default()
    };
    let cfg_base = if args.quick {
        SweepConfig {
            ii_values: vec![1, 2],
            k_values: vec![4],
            // A monotone path in weight space: each point's optimum
            // seeds the next as a near-optimal incumbent.
            weights: vec![(1.0, 0.0, 0.0), (0.5, 0.5, 0.0), (0.25, 0.75, 0.0)],
            ..cfg_base
        }
    } else {
        cfg_base
    };

    let mut errors: Vec<String> = Vec::new();
    let mut mismatches: Vec<String> = Vec::new();
    let mut rows = String::new();
    let (mut grand_cold, mut grand_incr) = (0.0f64, 0.0f64);
    let mut first_row = true;
    eprintln!(
        "[bench] resolve: {} benchmark(s), {} sweep point(s) each, {} s/point budget",
        benches.len(),
        cfg_base.ii_values.len() * cfg_base.k_values.len() * cfg_base.weights.len(),
        args.time_limit
    );
    for b in &benches {
        let warm = match run_sweep(
            &b.dfg,
            &b.target,
            &SweepConfig {
                incremental: true,
                ..cfg_base.clone()
            },
        ) {
            Ok(r) => r,
            Err(e) => {
                errors.push(format!("{}: incremental sweep: {e}", b.name));
                continue;
            }
        };
        let cold = match run_sweep(
            &b.dfg,
            &b.target,
            &SweepConfig {
                incremental: false,
                ..cfg_base.clone()
            },
        ) {
            Ok(r) => r,
            Err(e) => {
                errors.push(format!("{}: cold sweep: {e}", b.name));
                continue;
            }
        };
        let cold_ms = ms(cold.total_wall);
        let incr_ms = ms(warm.total_wall) + ms(warm.setup_wall);
        grand_cold += cold_ms;
        grand_incr += incr_ms;
        let rs = warm.resolve.unwrap_or_default();
        let mut points = String::new();
        for (i, (w, c)) in warm.points.iter().zip(cold.points.iter()).enumerate() {
            // The equality contract binds completed searches: both
            // points optimal with different objectives is a bug. A
            // timed-out point returns an incumbent, recorded as null
            // match rather than compared.
            let comparable = w.status == Status::Optimal && c.status == Status::Optimal;
            let matched = if comparable {
                let m = (w.objective - c.objective).abs() <= 1e-6;
                if !m {
                    mismatches.push(format!(
                        "{} ii={} k={} alpha={}: incremental {} vs cold {}",
                        b.name, w.ii, w.k, w.alpha, w.objective, c.objective
                    ));
                }
                m.to_string()
            } else {
                "null".to_string()
            };
            points.push_str(&format!(
                "        {{\"ii\": {}, \"ii_achieved\": {}, \"k\": {}, \"alpha\": {}, \"beta\": {}, \
                 \"gamma\": {}, \"status\": \"{}\", \"objective\": {}, \"cold_objective\": {}, \
                 \"wall_ms\": {:.3}, \"cold_wall_ms\": {:.3}, \"warm_hit\": {}, \
                 \"objective_match\": {matched}}}{}\n",
                w.ii,
                w.ii_achieved,
                w.k,
                w.alpha,
                w.beta,
                w.gamma,
                w.status,
                jnum(w.objective),
                jnum(c.objective),
                ms(w.wall),
                ms(c.wall),
                w.warm_hit,
                if i + 1 < warm.points.len() { "," } else { "" },
            ));
        }
        let hit_rate = if rs.warm_attempts > 0 {
            format!("{:.4}", rs.warm_hits as f64 / rs.warm_attempts as f64)
        } else {
            "null".to_string()
        };
        rows.push_str(&format!(
            "    {}{{\"name\": \"{}\", \"points\": [\n{points}      ],\n      \
             \"cold_total_ms\": {cold_ms:.3}, \"incremental_total_ms\": {:.3}, \
             \"setup_ms\": {:.3}, \"speedup\": {:.3}, \"contexts\": {}, \
             \"bases_deduped\": {},\n      \
             \"resolve\": {{\"solves\": {}, \"cached_results\": {}, \"cold_solves\": {}, \
             \"incumbent_seeds\": {}, \
             \"warm_attempts\": {}, \"warm_hits\": {}, \"basis_reuse_hit_rate\": {hit_rate}, \
             \"lu_factor_reuses\": {}, \"lu_refactors\": {}, \
             \"frontier_resumes\": {}, \"frontier_nodes_reused\": {}}}}}\n",
            if first_row { "" } else { "," },
            json_escape(b.name),
            ms(warm.total_wall),
            ms(warm.setup_wall),
            cold_ms / incr_ms.max(1e-9),
            warm.contexts,
            warm.bases_deduped,
            rs.solves,
            rs.cached_results,
            rs.cold_solves,
            rs.incumbent_seeds,
            rs.warm_attempts,
            rs.warm_hits,
            rs.lu_factor_reuses,
            rs.lu_refactors,
            rs.frontier_resumes,
            rs.frontier_nodes_reused,
        ));
        first_row = false;
        eprintln!(
            "[bench] {:>8}: cold {cold_ms:>9.1} ms -> incremental {incr_ms:>9.1} ms \
             ({:.2}x, {} base(s) deduped, incumbent seeds {}, warm {}/{}, LU reused {})",
            b.name,
            cold_ms / incr_ms.max(1e-9),
            warm.bases_deduped,
            rs.incumbent_seeds,
            rs.warm_hits,
            rs.warm_attempts,
            rs.lu_factor_reuses,
        );
    }

    // Decompose A/B: clone-per-subproblem vs shared-context sub-solves,
    // serial (the round timing comes from the global trace). Quick mode
    // keeps the sweep set; the full run covers the whole suite.
    let ab_benches = if args.quick { benches.clone() } else { all() };
    let mut ab_rows = String::new();
    let mut ab_improved = 0usize;
    eprintln!(
        "[bench] decompose A/B: clone vs shared-context sub-solves over {} benchmark(s)",
        ab_benches.len()
    );
    for (i, b) in ab_benches.iter().enumerate() {
        let clone = run_decompose_ab(b, budget, false);
        let incr = run_decompose_ab(b, budget, true);
        let (clone, incr) = match (clone, incr) {
            (Ok(c), Ok(i)) => (c, i),
            (c, i) => {
                for e in [c.err(), i.err()].into_iter().flatten() {
                    errors.push(format!("decompose A/B {e}"));
                }
                continue;
            }
        };
        if (clone.objective - incr.objective).abs() > 1e-6 {
            mismatches.push(format!(
                "{} decompose A/B: clone objective {} vs incremental {}",
                b.name, clone.objective, incr.objective
            ));
        }
        let improved = incr.round_ms < clone.round_ms;
        ab_improved += usize::from(improved);
        ab_rows.push_str(&format!(
            "    {}{{\"name\": \"{}\", \"clone_round_ms\": {:.3}, \"incremental_round_ms\": {:.3}, \
             \"improved\": {improved}, \"clone_subproblems\": {}, \"incremental_subproblems\": {}, \
             \"resolve_solves\": {}}}\n",
            if i == 0 { "" } else { "," },
            json_escape(b.name),
            clone.round_ms,
            incr.round_ms,
            clone.subproblems,
            incr.subproblems,
            incr.resolve_solves
                .map_or("null".to_string(), |s| s.to_string()),
        ));
        eprintln!(
            "[bench] {:>8}: decompose rounds clone {:>8.1} ms -> incremental {:>8.1} ms ({})",
            b.name,
            clone.round_ms,
            incr.round_ms,
            if improved { "improved" } else { "no gain" },
        );
    }

    let speedup = grand_cold / grand_incr.max(1e-9);
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str(&format!(
        "  \"suite\": \"{}\",\n",
        if args.quick { "quick" } else { "full" }
    ));
    j.push_str("  \"mode\": \"resolve\",\n");
    j.push_str(&format!("  \"jobs\": {},\n", args.jobs));
    j.push_str(&format!("  \"time_limit_s\": {},\n", args.time_limit));
    j.push_str(&format!("  \"cold_total_ms\": {grand_cold:.3},\n"));
    j.push_str(&format!("  \"incremental_total_ms\": {grand_incr:.3},\n"));
    j.push_str(&format!("  \"speedup\": {speedup:.3},\n"));
    j.push_str(&format!(
        "  \"objectives_match\": {},\n",
        mismatches.is_empty()
    ));
    j.push_str("  \"benchmarks\": [\n");
    j.push_str(&rows);
    j.push_str("  ],\n");
    j.push_str(&format!("  \"decompose_improved_count\": {ab_improved},\n"));
    j.push_str("  \"decompose_ab\": [\n");
    j.push_str(&ab_rows);
    j.push_str("  ],\n");
    j.push_str("  \"errors\": [");
    for (i, e) in errors.iter().enumerate() {
        if i > 0 {
            j.push_str(", ");
        }
        j.push_str(&format!("\"{}\"", json_escape(e)));
    }
    j.push_str("]\n}\n");
    if let Err(e) = std::fs::write(&args.out, &j) {
        eprintln!("[bench] cannot write {}: {e}", args.out);
        std::process::exit(1);
    }
    if !args.no_history {
        compare::append_history(&format!(
            "{{\"ts\": {}, \"mode\": \"resolve\", \"suite\": \"{}\", \"jobs\": {}, \
             \"time_limit_s\": {}, \"cold_total_ms\": {grand_cold:.3}, \
             \"incremental_total_ms\": {grand_incr:.3}, \"speedup\": {speedup:.3}, \
             \"decompose_improved_count\": {ab_improved}, \"objectives_match\": {}, \
             \"errors\": {}}}",
            compare::unix_ts(),
            if args.quick { "quick" } else { "full" },
            args.jobs,
            args.time_limit,
            mismatches.is_empty(),
            errors.len(),
        ));
    }
    eprintln!(
        "[bench] total: cold {grand_cold:.1} ms, incremental {grand_incr:.1} ms, \
         speedup {speedup:.2}x, decompose rounds improved on {ab_improved}/{} -> {}",
        ab_benches.len(),
        args.out
    );
    for m in &mismatches {
        eprintln!("[bench] OBJECTIVE MISMATCH {m}");
    }
    for e in &errors {
        eprintln!("[bench] ERROR {e}");
    }
    if !mismatches.is_empty() || !errors.is_empty() {
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn main() {
    let args = parse_args();
    if args.mode == Mode::Compare {
        let [base, cand] = args.compare_files.as_slice() else {
            usage("compare needs exactly two report paths: BASELINE.json CANDIDATE.json");
        };
        compare::compare_main(
            base,
            cand,
            &compare::CompareOpts {
                wall_tol_pct: args.wall_tol_pct,
                allow_missing: args.allow_missing,
            },
        );
    }
    if args.mode == Mode::Resolve {
        resolve_main(&args);
    }
    let mut benches = all();
    if args.quick {
        // CI smoke set: the two benchmarks whose MILP-map models the
        // optimized solver proves optimal within seconds — CLZ (cold
        // times out; shows the warm-start/presolve win) and GSM (both
        // passes finish; exercises the objective-equivalence check).
        benches.retain(|b| b.name == "CLZ" || b.name == "GSM");
    }
    if let Some(name) = &args.only {
        benches.retain(|b| b.name.eq_ignore_ascii_case(name));
        if benches.is_empty() {
            usage(&format!("unknown benchmark {name}"));
        }
    }
    let budget = Duration::from_secs(args.time_limit);
    if args.overhead_check {
        overhead_check(&benches, budget);
    }

    // Model-size audit: build (without solving) each benchmark's
    // MILP-map model over the raw K-feasible cut pool — the enumeration
    // the priority-cut analysis starts from, with no pruning of any
    // kind — so the report can state how much smaller the certified
    // pruning makes the model a solver actually sees. Indexed by suite
    // order.
    let size_opts = FlowOptions::default();
    let unpruned: Vec<Option<(usize, usize, usize)>> = benches
        .iter()
        .map(|b| milp_map_model_size_raw(&b.dfg, &b.target, &size_opts).ok())
        .collect();

    // Phase 1: the serial cold baseline — one thread, no presolve, no
    // warm starts, benchmarks strictly one after another.
    let cold_opts = FlowOptions {
        time_limit: budget,
        jobs: 1,
        presolve: false,
        warm_start: false,
        probing: false,
        cuts: false,
        symmetry: false,
        // Both passes solve the *same* certified-pruned model: the
        // cold/optimized delta then measures solver features alone, and
        // `objectives_match` compares like against like. The size audit
        // above holds the raw-pool yardstick.
        priority_cuts: true,
        ..FlowOptions::default()
    };
    let cold_start = Instant::now();
    let cold: Vec<Result<Measured, String>> = if args.skip_cold {
        Vec::new()
    } else {
        eprintln!(
            "[bench] phase 1/2: serial cold baseline over {} benchmarks",
            benches.len()
        );
        benches.iter().map(|b| measure(b, &cold_opts)).collect()
    };
    let cold_total = cold_start.elapsed();

    // Phase 2: the optimized pipeline — presolve + dual-simplex warm
    // starts, benchmarks fanned across `--jobs` workers. Each solve
    // stays single-threaded: outer (per-benchmark) parallelism composes
    // better than oversubscribing the cores with solver threads, and it
    // keeps the per-solve node counts comparable to the baseline. The
    // CLI exposes the solver's own thread count for single solves.
    let opt_opts = FlowOptions {
        time_limit: budget,
        jobs: 1,
        presolve: true,
        warm_start: true,
        priority_cuts: true,
        gomory_cuts: args.gap_closers,
        decompose: args.gap_closers,
        ..FlowOptions::default()
    };
    let workers = args
        .jobs
        .max(1)
        .min(benches.len().max(1))
        .min(std::thread::available_parallelism().map_or(1, |n| n.get()));
    eprintln!(
        "[bench] phase 2/2: optimized pass (presolve + warm starts, --jobs {}, {} worker(s))",
        args.jobs, workers
    );
    let opt_start = Instant::now();
    let optimized = fan_out(&benches, args.jobs, |b| measure(b, &opt_opts));
    let opt_total = opt_start.elapsed();

    // Compare and report. The solver-equivalence contract only binds
    // completed searches: when both passes prove optimality the
    // objectives must be bit-identical, and a divergence fails the run.
    // A pass that hit its time budget returns an incumbent, not the
    // optimum, so those rows are recorded but not compared.
    let mut rows: Vec<(usize, Option<&Measured>, &Measured)> = Vec::new();
    let mut mismatches = Vec::new();
    let mut errors = Vec::new();
    for (i, o) in optimized.iter().enumerate() {
        let o = match o {
            Ok(o) => o,
            Err(e) => {
                errors.push(e.clone());
                continue;
            }
        };
        let c = match cold.get(i) {
            Some(Ok(c)) => Some(c),
            Some(Err(e)) => {
                errors.push(e.clone());
                continue;
            }
            None => None,
        };
        if let Some(c) = c {
            let both_optimal = c.milp.status == Status::Optimal && o.milp.status == Status::Optimal;
            if both_optimal && (c.milp.objective - o.milp.objective).abs() > 1e-6 {
                mismatches.push(format!(
                    "{}: cold objective {} vs optimized {}",
                    c.name, c.milp.objective, o.milp.objective
                ));
            }
        }
        rows.push((i, c, o));
    }

    let speedup = cold_total.as_secs_f64() / opt_total.as_secs_f64().max(1e-9);
    // Speedup over the benchmarks the optimized pass proves optimal.
    // The cold wall-clock is capped at the per-solve budget, so this is
    // a *lower bound* on the true speedup whenever the cold pass timed
    // out (its real solve time is unknown but larger).
    let (mut comp_cold, mut comp_opt, mut comp_n) = (0.0f64, 0.0f64, 0usize);
    for (_, c, o) in &rows {
        if let Some(c) = c {
            if o.milp.status == Status::Optimal {
                comp_cold += c.wall.as_secs_f64();
                comp_opt += o.wall.as_secs_f64();
                comp_n += 1;
            }
        }
    }
    // No benchmark completed -> the ratio is 0/0 noise, not a bound;
    // the report says `null` rather than a meaningless number.
    let comp_speedup = (comp_n > 0 && comp_opt > 0.0).then(|| comp_cold / comp_opt);
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str(&format!(
        "  \"suite\": \"{}\",\n",
        if args.quick { "quick" } else { "full" }
    ));
    j.push_str(&format!("  \"jobs\": {},\n", args.jobs));
    j.push_str(&format!("  \"time_limit_s\": {},\n", args.time_limit));
    if !args.skip_cold {
        j.push_str(&format!("  \"cold_total_ms\": {:.3},\n", ms(cold_total)));
        j.push_str(&format!("  \"speedup\": {speedup:.3},\n"));
        j.push_str(&format!("  \"completed_count\": {comp_n},\n"));
        j.push_str(&format!(
            "  \"completed_speedup_lower_bound\": {},\n",
            comp_speedup.map_or("null".to_string(), |s| format!("{s:.3}"))
        ));
    }
    j.push_str(&format!(
        "  \"optimized_total_ms\": {:.3},\n",
        ms(opt_total)
    ));
    j.push_str(&format!(
        "  \"objectives_match\": {},\n",
        mismatches.is_empty()
    ));
    j.push_str("  \"benchmarks\": [\n");
    for (i, (bi, c, o)) in rows.iter().enumerate() {
        let s = &o.milp.solver;
        // Unpruned model sizes come from the no-solve audit pass; a
        // benchmark whose audit build failed records `null` for them.
        let (uv, uc, ucuts) = unpruned[*bi].map_or_else(
            || ("null".to_string(), "null".to_string(), "null".to_string()),
            |(v, r, t)| (v.to_string(), r.to_string(), t.to_string()),
        );
        // No warm starts attempted -> the rate is undefined, not 0.
        let hit = s
            .warm_hit_rate()
            .map_or("null".to_string(), |h| format!("{h:.4}"));
        let gap = pipemap_milp::relative_gap(o.milp.objective, o.milp.best_bound);
        let mut curve = String::new();
        for (k, p) in s.convergence.iter().enumerate() {
            if k > 0 {
                curve.push_str(", ");
            }
            curve.push_str(&format!(
                "{{\"t_ms\": {:.3}, \"objective\": {}, \"bound\": {}, \"gap_rel\": {}}}",
                p.t_ms,
                jnum(p.objective),
                jnum(p.bound),
                p.gap_rel()
                    .map_or("null".to_string(), |g| format!("{g:.6}"))
            ));
        }
        let cold_part = match c {
            Some(c) => {
                // Both passes capped at the same budget -> the wall-clock
                // ratio says nothing about solver speed; record null
                // (matching the warm_hit_rate convention for "undefined").
                let both_timed_out =
                    c.milp.status == Status::TimedOut && o.milp.status == Status::TimedOut;
                let per_speedup = if both_timed_out {
                    "null".to_string()
                } else {
                    format!(
                        "{:.3}",
                        c.wall.as_secs_f64() / o.wall.as_secs_f64().max(1e-9)
                    )
                };
                format!(
                    "\"cold\": {{\"wall_ms\": {:.3}, \"nodes\": {}, \"lp_iterations\": {}, \
                     \"objective\": {}, \"status\": \"{}\"}},\n      \"speedup\": {per_speedup},\n      ",
                    ms(c.wall),
                    c.milp.nodes,
                    c.milp.lp_iterations,
                    jnum(c.milp.objective),
                    c.milp.status,
                )
            }
            None => String::new(),
        };
        let workers = s
            .nodes_per_worker
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        j.push_str(&format!(
            "    {{\"name\": \"{}\", \"objective\": {}, \"best_bound\": {}, \
             \"mip_gap_rel\": {}, \"status\": \"{}\",\n      {}\
             \"optimized\": {{\"wall_ms\": {:.3}, \"nodes\": {}, \"lp_iterations\": {}, \
             \"milp_vars\": {}, \"milp_constraints\": {}, \
             \"cuts_enumerated\": {}, \"cuts_pruned\": {}, \
             \"milp_vars_unpruned\": {}, \"milp_constraints_unpruned\": {}, \"cuts_unpruned\": {}, \
             \"warm_attempts\": {}, \"warm_hits\": {}, \"warm_hit_rate\": {}, \
             \"presolve_rows_removed\": {}, \"presolve_cols_fixed\": {}, \
             \"presolve_bounds_tightened\": {}, \"presolve_coeffs_reduced\": {}, \
             \"probe_vars\": {}, \"probe_fixings\": {}, \"probe_implications\": {}, \
             \"clique_table\": {}, \"clique_cuts\": {}, \"cover_cuts\": {}, \"implication_cuts\": {}, \
             \"cut_rounds\": {}, \"cuts_aged_out\": {}, \"symmetry_orbits\": {}, \
             \"orbital_fixings\": {}, \"implication_fixings\": {}, \
             \"gomory_cuts\": {}, \"subproblems_solved\": {}, \
             \"stitched_incumbents\": {}, \"incumbent_source\": \"{}\", \
             \"warm_skip_reason\": {}, \
             \"nodes_per_worker\": [{}],\n      \"convergence\": [{}]}}}}{}\n",
            json_escape(o.name),
            jnum(o.milp.objective),
            jnum(o.milp.best_bound),
            gap.map_or("null".to_string(), |g| format!("{g:.6}")),
            o.milp.status,
            cold_part,
            ms(o.wall),
            o.milp.nodes,
            o.milp.lp_iterations,
            o.milp.variables,
            o.milp.constraints,
            o.milp.cuts_enumerated,
            o.milp.cuts_pruned,
            uv,
            uc,
            ucuts,
            s.warm_attempts,
            s.warm_hits,
            hit,
            s.presolve_rows_removed,
            s.presolve_cols_fixed,
            s.presolve_bounds_tightened,
            s.presolve_coeffs_reduced,
            s.probe_vars,
            s.probe_fixings,
            s.probe_implications,
            s.clique_table,
            s.clique_cuts,
            s.cover_cuts,
            s.implication_cuts,
            s.cut_rounds,
            s.cuts_aged_out,
            s.symmetry_orbits,
            s.orbital_fixings,
            s.implication_fixings,
            s.gomory_cuts,
            o.milp.subproblems_solved,
            o.milp.stitched_incumbents,
            o.milp.incumbent_source,
            s.warm_skip_reason
                .map_or("null".to_string(), |r| format!("\"{}\"", json_escape(r))),
            workers,
            curve,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    j.push_str("  ],\n");
    j.push_str("  \"errors\": [");
    for (i, e) in errors.iter().enumerate() {
        if i > 0 {
            j.push_str(", ");
        }
        j.push_str(&format!("\"{}\"", json_escape(e)));
    }
    j.push_str("]\n}\n");
    if let Err(e) = std::fs::write(&args.out, &j) {
        eprintln!("[bench] cannot write {}: {e}", args.out);
        std::process::exit(1);
    }
    if !args.no_history {
        // One line per run: enough to chart a trend or feed `compare`
        // by hand, small enough to commit the file if a project wants a
        // durable record.
        let mut hb = String::new();
        for (i, (_, _, o)) in rows.iter().enumerate() {
            if i > 0 {
                hb.push_str(", ");
            }
            let gap = pipemap_milp::relative_gap(o.milp.objective, o.milp.best_bound);
            hb.push_str(&format!(
                "{{\"name\": \"{}\", \"status\": \"{}\", \"objective\": {}, \
                 \"best_bound\": {}, \"gap_rel\": {}, \"wall_ms\": {:.3}, \"nodes\": {}, \
                 \"warm_hit_rate\": {}}}",
                json_escape(o.name),
                o.milp.status,
                jnum(o.milp.objective),
                jnum(o.milp.best_bound),
                gap.map_or("null".to_string(), |g| format!("{g:.6}")),
                ms(o.wall),
                o.milp.nodes,
                o.milp
                    .solver
                    .warm_hit_rate()
                    .map_or("null".to_string(), |h| format!("{h:.4}")),
            ));
        }
        compare::append_history(&format!(
            "{{\"ts\": {}, \"mode\": \"milp\", \"suite\": \"{}\", \"jobs\": {}, \
             \"time_limit_s\": {}, \"optimized_total_ms\": {:.3}, \"cold_total_ms\": {}, \
             \"objectives_match\": {}, \"errors\": {}, \"benchmarks\": [{hb}]}}",
            compare::unix_ts(),
            if args.quick { "quick" } else { "full" },
            args.jobs,
            args.time_limit,
            ms(opt_total),
            if args.skip_cold {
                "null".to_string()
            } else {
                format!("{:.3}", ms(cold_total))
            },
            mismatches.is_empty(),
            errors.len(),
        ));
    }

    for (bi, c, o) in &rows {
        let s = &o.milp.solver;
        let cold_part = match c {
            Some(c) => format!(
                "cold {:>9.1} ms ({} nodes, {}) -> ",
                ms(c.wall),
                c.milp.nodes,
                c.milp.status
            ),
            None => String::new(),
        };
        let raw_vars = unpruned[*bi].map_or("?".to_string(), |(v, _, _)| v.to_string());
        eprintln!(
            "[bench] {:>8}: {}optimized {:>9.1} ms ({} nodes, {}, warm {}/{}, {} hit, \
             {} vars of {} raw, {} cut(s) pruned)",
            o.name,
            cold_part,
            ms(o.wall),
            o.milp.nodes,
            o.milp.status,
            s.warm_hits,
            s.warm_attempts,
            s.warm_hit_rate()
                .map_or("n/a".to_string(), |h| format!("{:.0}%", h * 100.0)),
            o.milp.variables,
            raw_vars,
            o.milp.cuts_pruned,
        );
    }
    if args.skip_cold {
        eprintln!(
            "[bench] total: optimized {:.1} ms -> {}",
            ms(opt_total),
            args.out
        );
    } else {
        eprintln!(
            "[bench] total: cold {:.1} ms, optimized {:.1} ms, speedup {:.2}x -> {}",
            ms(cold_total),
            ms(opt_total),
            speedup,
            args.out
        );
        if let Some(s) = comp_speedup {
            eprintln!(
                "[bench] completed-to-optimality subset ({comp_n} benchmarks): \
                 >= {s:.2}x (cold capped at the {} s budget)",
                args.time_limit
            );
        }
    }
    for m in &mismatches {
        eprintln!("[bench] OBJECTIVE MISMATCH {m}");
    }
    for e in &errors {
        eprintln!("[bench] ERROR {e}");
    }
    if !mismatches.is_empty() || !errors.is_empty() {
        std::process::exit(1);
    }
}
