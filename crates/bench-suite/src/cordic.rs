//! CORDIC — coordinate rotation (paper Table 1, scientific computing).
//!
//! Rotation-mode iterations at 16-bit fixed point, fully unrolled: each
//! stage picks a rotation direction from the sign of the residual angle
//! (an MSB-only test — exactly the paper's bit-level special case),
//! arithmetic-shifts the coordinates and accumulates the arctangent
//! constants. All adds/subs/muxes — the FF savings in the paper come from
//! shortening this arithmetic pipeline.

use pipemap_ir::{DfgBuilder, NodeId, Target};

use crate::{BenchClass, Benchmark};

/// Arctangent table in 16-bit fixed point (atan(2^-i) scaled by 2^13).
const ATAN: [u64; 8] = [6434, 3798, 2007, 1019, 512, 256, 128, 64];

/// Arithmetic shift right built from logical ops: `shr` plus sign fill.
fn asr(b: &mut DfgBuilder, v: NodeId, s: u32, width: u32) -> NodeId {
    let logical = b.shr(v, s);
    let sign = b.bit(v, width - 1);
    let fill = {
        let ones = pipemap_ir::mask(width) & !(pipemap_ir::mask(width) >> s);
        let hi = b.const_(ones, width);
        let zero = b.const_(0, width);
        b.mux(sign, hi, zero)
    };
    b.or(logical, fill)
}

/// Build the CORDIC kernel with `iters` unrolled stages (16-bit).
///
/// # Panics
///
/// Panics if `iters` is 0 or greater than 8.
pub fn cordic(iters: u32) -> Benchmark {
    assert!((1..=8).contains(&iters), "1..=8 iterations supported");
    const W: u32 = 16;
    let mut b = DfgBuilder::new(format!("cordic{iters}"));
    let mut x = b.input("x", W);
    let mut y = b.input("y", W);
    let mut z = b.input("z", W);

    for i in 0..iters {
        // d = (z >= 0): rotate positive; MSB-only signed test.
        let d = b.is_non_negative(z);
        b.name_node(d, format!("d{i}"));
        let xs = asr(&mut b, x, i, W);
        let ys = asr(&mut b, y, i, W);
        let atan = b.const_(ATAN[i as usize], W);

        let x_plus = b.add(x, ys);
        let x_minus = b.sub(x, ys);
        let y_plus = b.add(y, xs);
        let y_minus = b.sub(y, xs);
        let z_plus = b.add(z, atan);
        let z_minus = b.sub(z, atan);

        x = b.mux(d, x_minus, x_plus);
        y = b.mux(d, y_plus, y_minus);
        z = b.mux(d, z_minus, z_plus);
    }
    b.output("x", x);
    b.output("y", y);
    b.output("z", z);

    Benchmark {
        name: "CORDIC",
        class: BenchClass::Application,
        domain: "Scientific Computing",
        description: "Coordinate Rotation Digital Computer",
        dfg: b.finish().expect("cordic graph is valid"),
        target: Target::default(),
    }
}

/// Software reference for one CORDIC pipeline evaluation.
pub fn soft_cordic(iters: u32, mut x: i16, mut y: i16, mut z: i16) -> (i16, i16, i16) {
    for i in 0..iters {
        let d = z >= 0;
        let xs = x >> i;
        let ys = y >> i;
        let atan = ATAN[i as usize] as i16;
        if d {
            let nx = x.wrapping_sub(ys);
            let ny = y.wrapping_add(xs);
            let nz = z.wrapping_sub(atan);
            x = nx;
            y = ny;
            z = nz;
        } else {
            let nx = x.wrapping_add(ys);
            let ny = y.wrapping_sub(xs);
            let nz = z.wrapping_add(atan);
            x = nx;
            y = ny;
            z = nz;
        }
    }
    (x, y, z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_ir::{execute, InputStreams};

    #[test]
    fn graph_matches_soft_model() {
        let iters = 5;
        let bench = cordic(iters);
        let g = &bench.dfg;
        let cases: [(i16, i16, i16); 5] = [
            (8192, 0, 6434), // rotate by 45 degrees
            (8192, 0, -6434),
            (1000, -2000, 300),
            (-5000, 1234, -2222),
            (0, 0, 0),
        ];
        let mut ins = InputStreams::new();
        let to_u = |v: i16| u64::from(v as u16);
        ins.set(g.inputs()[0], cases.iter().map(|c| to_u(c.0)).collect());
        ins.set(g.inputs()[1], cases.iter().map(|c| to_u(c.1)).collect());
        ins.set(g.inputs()[2], cases.iter().map(|c| to_u(c.2)).collect());
        let t = execute(g, &ins, cases.len()).expect("executes");
        let outs = g.outputs();
        for (k, &(x, y, z)) in cases.iter().enumerate() {
            let (ex, ey, ez) = soft_cordic(iters, x, y, z);
            assert_eq!(t.value(k, outs[0]) as u16 as i16, ex, "x case {k}");
            assert_eq!(t.value(k, outs[1]) as u16 as i16, ey, "y case {k}");
            assert_eq!(t.value(k, outs[2]) as u16 as i16, ez, "z case {k}");
        }
    }

    #[test]
    fn rotation_approaches_target_angle() {
        // After 8 iterations the residual angle should be small.
        let (_, y, z) = soft_cordic(8, 8192, 0, 6434);
        assert!(z.abs() < 200, "residual angle {z}");
        assert!(y > 4000, "rotated y {y}");
    }
}
