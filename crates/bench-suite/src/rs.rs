//! RS — Reed-Solomon decoder front end (paper Table 1, communication).
//!
//! Three GF(2⁸) syndrome accumulators `s_i ← α^{i+1}·s_i ⊕ d` run as
//! loop-carried recurrences (constant field multiplications unrolled as
//! xtime chains, as real RS hardware does), and the full variable GFMUL
//! kernel combines the syndromes on the feed-forward path — the paper
//! notes RS "utilizes GFMUL as a kernel in its computations" (§4.2).

use pipemap_ir::{DfgBuilder, NodeId, Target};

use crate::gfmul::{gfmul_into, soft_gfmul};
use crate::{BenchClass, Benchmark};

/// Multiply by the constant α^k (α = 0x02) via an xtime chain.
fn const_alpha_pow(b: &mut DfgBuilder, v: NodeId, k: u32) -> NodeId {
    let mut cur = v;
    for _ in 0..k {
        let hi = b.bit(cur, 7);
        let dbl = b.shl(cur, 1);
        let poly = b.const_(0x1B, 8);
        let red = b.xor(dbl, poly);
        cur = b.mux(hi, red, dbl);
    }
    cur
}

/// Build the RS benchmark.
pub fn rs() -> Benchmark {
    let mut b = DfgBuilder::new("rs_decode");
    let d = b.input("data", 8);

    // Syndrome recurrences s_i' = alpha^{i+1} * s_i@-1 ^ d.
    let mut syndromes = Vec::new();
    for i in 0..3u32 {
        let prev = b.placeholder(8);
        let scaled = const_alpha_pow(&mut b, prev, i + 1);
        let next = b.xor(scaled, d);
        b.bind(prev, next, 1).expect("syndrome feedback");
        b.name_node(next, format!("s{i}"));
        syndromes.push(next);
    }

    // Feed-forward: a full variable Galois multiply of two syndromes,
    // folded with the third (an error-locator-style term).
    let prod = gfmul_into(&mut b, syndromes[0], syndromes[1]);
    let locator = b.xor(prod, syndromes[2]);
    b.output("locator", locator);
    b.output("s0", syndromes[0]);

    Benchmark {
        name: "RS",
        class: BenchClass::Application,
        domain: "Communication",
        description: "Reed-Solomon decoder",
        dfg: b.finish().expect("rs graph is valid"),
        target: Target::default(),
    }
}

/// Software reference model: returns `(locator, s0)` per iteration.
pub fn soft_rs(data: &[u8]) -> Vec<(u8, u8)> {
    let mut s = [0u8; 3];
    let mut out = Vec::new();
    for &d in data {
        for (i, slot) in s.iter_mut().enumerate() {
            let alpha_pow = (0..=i).fold(1u8, |acc, _| soft_gfmul(acc, 2));
            *slot = soft_gfmul(*slot, alpha_pow) ^ d;
        }
        let locator = soft_gfmul(s[0], s[1]) ^ s[2];
        out.push((locator, s[0]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_ir::{execute, InputStreams};

    #[test]
    fn graph_matches_soft_model() {
        let bench = rs();
        let g = &bench.dfg;
        let data: Vec<u64> = vec![0x12, 0xFF, 0x00, 0x80, 0x7E, 0xA5, 0x3C, 0x01];
        let mut ins = InputStreams::new();
        ins.set(g.inputs()[0], data.clone());
        let t = execute(g, &ins, data.len()).expect("executes");
        let expected = soft_rs(&data.iter().map(|&v| v as u8).collect::<Vec<_>>());
        let outs = g.outputs();
        for (k, &(loc, s0)) in expected.iter().enumerate() {
            assert_eq!(t.value(k, outs[0]) as u8, loc, "locator at {k}");
            assert_eq!(t.value(k, outs[1]) as u8, s0, "s0 at {k}");
        }
    }

    #[test]
    fn recurrences_are_distance_one() {
        let bench = rs();
        let s = bench.dfg.stats();
        // Each of the 3 syndrome placeholders feeds the first xtime's bit
        // test and shift: 2 loop-carried edges per syndrome.
        assert_eq!(s.loop_carried_edges, 6);
        assert_eq!(s.black_box_ops, 0); // RS front end is pure logic here
    }
}
