//! MT — Mersenne-Twister pseudorandom generation (paper Table 1,
//! scientific computing).
//!
//! A condensed MT19937 step: the twist combines state words from one, two
//! and three iterations back (loop-carried distances 1–3, exercising the
//! register-chain signals the MILP prices), followed by the full 4-stage
//! tempering network. Two independent streams are generated per iteration
//! to give the graph some width, as the paper's 236-instruction version
//! has.

use pipemap_ir::{DfgBuilder, NodeId, Target};

use crate::{BenchClass, Benchmark};

const MATRIX_A: u64 = 0x9908_B0DF;
const UPPER: u64 = 0x8000_0000;
const LOWER: u64 = 0x7FFF_FFFF;

struct Stream {
    state: NodeId,
    out: NodeId,
}

/// One twist + temper pipeline; `seed_mix` is xored in each iteration so
/// the two streams differ.
fn stream(b: &mut DfgBuilder, entropy: NodeId, init: u64) -> Stream {
    const W: u32 = 32;
    let s1 = b.placeholder(W); // state from 1 iteration back
    let s2 = b.placeholder(W);
    let s3 = b.placeholder(W);

    let upper = b.const_(UPPER, W);
    let lower = b.const_(LOWER, W);
    let hi = b.and(s1, upper);
    let lo = b.and(s2, lower);
    let mixed = b.or(hi, lo);
    let shifted = b.shr(mixed, 1);
    let odd = b.bit(mixed, 0);
    let ma = b.const_(MATRIX_A, W);
    let zero = b.const_(0, W);
    let mag = b.mux(odd, ma, zero);
    let twisted = b.xor(shifted, mag);
    let folded = b.xor(twisted, s3);
    let state = b.xor(folded, entropy);

    b.bind(s1, state, 1).expect("dist-1 feedback");
    b.bind(s2, state, 2).expect("dist-2 feedback");
    b.bind(s3, state, 3).expect("dist-3 feedback");
    b.set_init_value(state, init);

    // Tempering: y ^= y>>11; y ^= (y<<7)&B; y ^= (y<<15)&C; y ^= y>>18.
    let t1s = b.shr(state, 11);
    let y1 = b.xor(state, t1s);
    let t2s = b.shl(y1, 7);
    let bmask = b.const_(0x9D2C_5680, W);
    let t2m = b.and(t2s, bmask);
    let y2 = b.xor(y1, t2m);
    let t3s = b.shl(y2, 15);
    let cmask = b.const_(0xEFC6_0000, W);
    let t3m = b.and(t3s, cmask);
    let y3 = b.xor(y2, t3m);
    let t4s = b.shr(y3, 18);
    let out = b.xor(y3, t4s);
    Stream { state, out }
}

/// Build the MT benchmark (two tempered streams, 32-bit).
pub fn mt() -> Benchmark {
    let mut b = DfgBuilder::new("mt");
    let e0 = b.input("entropy0", 32);
    let e1 = b.input("entropy1", 32);
    let a = stream(&mut b, e0, 0x1234_5678);
    let c = stream(&mut b, e1, 0x8765_4321);
    // Combined output as well, mixing the streams.
    let both = b.xor(a.out, c.out);
    b.output("r0", a.out);
    b.output("r1", c.out);
    b.output("mix", both);
    let _ = (a.state, c.state);

    Benchmark {
        name: "MT",
        class: BenchClass::Application,
        domain: "Scientific Computing",
        description: "Mersenne Twister pseudorandom number generation",
        dfg: b.finish().expect("mt graph is valid"),
        target: Target::default(),
    }
}

/// Software reference model of one tempered stream.
pub fn soft_mt_stream(entropy: &[u32], init: u32) -> Vec<u32> {
    let mut hist = vec![init; 3]; // [s@-3, s@-2, s@-1] conceptually
    let mut outs = Vec::new();
    for &e in entropy {
        let s1 = hist[hist.len() - 1];
        let s2 = hist[hist.len() - 2];
        let s3 = hist[hist.len() - 3];
        let mixed = (s1 & UPPER as u32) | (s2 & LOWER as u32);
        let mag = if mixed & 1 != 0 { MATRIX_A as u32 } else { 0 };
        let state = ((mixed >> 1) ^ mag) ^ s3 ^ e;
        hist.push(state);
        let mut y = state;
        y ^= y >> 11;
        y ^= (y << 7) & 0x9D2C_5680;
        y ^= (y << 15) & 0xEFC6_0000;
        y ^= y >> 18;
        outs.push(y);
    }
    outs
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_ir::{execute, InputStreams};

    #[test]
    fn graph_matches_soft_model() {
        let bench = mt();
        let g = &bench.dfg;
        let e0: Vec<u64> = vec![5, 99, 0xDEAD_BEEF, 7, 0, 1, 2, 3];
        let e1: Vec<u64> = vec![1, 2, 3, 4, 5, 6, 7, 8];
        let mut ins = InputStreams::new();
        ins.set(g.inputs()[0], e0.clone());
        ins.set(g.inputs()[1], e1.clone());
        let t = execute(g, &ins, e0.len()).expect("executes");

        let s0 = soft_mt_stream(
            &e0.iter().map(|&v| v as u32).collect::<Vec<_>>(),
            0x1234_5678,
        );
        let s1 = soft_mt_stream(
            &e1.iter().map(|&v| v as u32).collect::<Vec<_>>(),
            0x8765_4321,
        );
        let outs = g.outputs();
        for k in 0..e0.len() {
            assert_eq!(t.value(k, outs[0]) as u32, s0[k], "r0 at {k}");
            assert_eq!(t.value(k, outs[1]) as u32, s1[k], "r1 at {k}");
            assert_eq!(t.value(k, outs[2]) as u32, s0[k] ^ s1[k], "mix at {k}");
        }
    }

    #[test]
    fn has_multi_distance_recurrences() {
        let bench = mt();
        let dists: std::collections::BTreeSet<u32> = bench
            .dfg
            .iter()
            .flat_map(|(_, n)| n.ins.iter().map(|p| p.dist))
            .collect();
        assert!(dists.contains(&1) && dists.contains(&2) && dists.contains(&3));
    }
}
