//! AES — one round on a 32-bit state column (paper Table 1, cryptography).
//!
//! SubBytes is performed by four replicated S-box ROMs (black-box memory
//! reads, one per byte lane — the standard way HLS meets II = 1 on AES),
//! MixColumns by explicit GF(2⁸) xtime logic, and AddRoundKey by xors.
//! The logic clouds around the ROM reads are what the mapping-aware MILP
//! compresses in the paper (−48 % FFs).

use pipemap_ir::{DfgBuilder, NodeId, Target};

use crate::gfmul::soft_gfmul;
use crate::{BenchClass, Benchmark};

/// The AES S-box, computed from the field inverse + affine map.
pub fn sbox_table() -> Vec<u64> {
    (0u16..256)
        .map(|x| {
            let x = x as u8;
            let inv = if x == 0 { 0 } else { gf_inverse(x) };
            u64::from(affine(inv))
        })
        .collect()
}

fn gf_inverse(x: u8) -> u8 {
    // x^254 in GF(2^8) by square-and-multiply.
    let mut result = 1u8;
    let mut base = x;
    let mut exp = 254u32;
    while exp > 0 {
        if exp & 1 == 1 {
            result = soft_gfmul(result, base);
        }
        base = soft_gfmul(base, base);
        exp >>= 1;
    }
    result
}

fn affine(b: u8) -> u8 {
    b ^ b.rotate_left(1) ^ b.rotate_left(2) ^ b.rotate_left(3) ^ b.rotate_left(4) ^ 0x63
}

/// `xtime` (multiply by 02 in GF(2⁸)) as logic.
fn xtime(b: &mut DfgBuilder, v: NodeId) -> NodeId {
    let hi = b.bit(v, 7);
    let dbl = b.shl(v, 1);
    let poly = b.const_(0x1B, 8);
    let red = b.xor(dbl, poly);
    b.mux(hi, red, dbl)
}

/// Build the AES round benchmark.
pub fn aes() -> Benchmark {
    let mut b = DfgBuilder::new("aes_round");
    let state = b.input("state", 32);
    let key = b.input("key", 32);

    // One replicated S-box ROM per byte lane (II = 1 with one read each).
    let table = sbox_table();
    let roms: Vec<_> = (0..4)
        .map(|i| b.add_memory(format!("sbox{i}"), 8, table.clone()))
        .collect();

    // SubBytes.
    let sub: Vec<NodeId> = (0..4)
        .map(|i| {
            let byte = b.slice(state, 8 * i, 8);
            b.load(roms[i as usize], byte)
        })
        .collect();

    // MixColumns: out_j = 2·a_j ^ 3·a_{j+1} ^ a_{j+2} ^ a_{j+3}.
    let x2: Vec<NodeId> = sub.iter().map(|&s| xtime(&mut b, s)).collect();
    let x3: Vec<NodeId> = sub.iter().zip(&x2).map(|(&s, &d)| b.xor(d, s)).collect();
    let mixed: Vec<NodeId> = (0..4)
        .map(|j| {
            let t1 = b.xor(x2[j], x3[(j + 1) % 4]);
            let t2 = b.xor(sub[(j + 2) % 4], sub[(j + 3) % 4]);
            b.xor(t1, t2)
        })
        .collect();

    // AddRoundKey + reassemble.
    let ark: Vec<NodeId> = (0..4)
        .map(|j| {
            let kb = b.slice(key, 8 * j as u32, 8);
            b.xor(mixed[j], kb)
        })
        .collect();
    let lo = b.concat(ark[1], ark[0]);
    let hi = b.concat(ark[3], ark[2]);
    let out = b.concat(hi, lo);
    b.output("out", out);

    Benchmark {
        name: "AES",
        class: BenchClass::Application,
        domain: "Cryptography",
        description: "Advanced Encryption Standard",
        dfg: b.finish().expect("aes graph is valid"),
        target: Target::default(),
    }
}

/// Software reference model of the same round.
pub fn soft_aes_round(state: u32, key: u32) -> u32 {
    let sbox = sbox_table();
    let a: Vec<u8> = (0..4)
        .map(|i| sbox[((state >> (8 * i)) & 0xFF) as usize] as u8)
        .collect();
    let mut out = 0u32;
    for j in 0..4 {
        let m =
            soft_gfmul(a[j], 2) ^ soft_gfmul(a[(j + 1) % 4], 3) ^ a[(j + 2) % 4] ^ a[(j + 3) % 4];
        let kb = ((key >> (8 * j)) & 0xFF) as u8;
        out |= u32::from(m ^ kb) << (8 * j);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_ir::{execute, InputStreams};

    #[test]
    fn sbox_known_values() {
        let t = sbox_table();
        assert_eq!(t[0x00], 0x63);
        assert_eq!(t[0x01], 0x7C);
        assert_eq!(t[0x53], 0xED);
        assert_eq!(t[0xFF], 0x16);
    }

    #[test]
    fn graph_matches_soft_model() {
        let bench = aes();
        let g = &bench.dfg;
        let cases: [(u32, u32); 4] = [
            (0x0011_2233, 0xA0FA_FE17),
            (0xDEAD_BEEF, 0x0000_0000),
            (0xFFFF_FFFF, 0x1234_5678),
            (0x0000_0001, 0xFFFF_FFFF),
        ];
        let mut ins = InputStreams::new();
        ins.set(
            g.inputs()[0],
            cases.iter().map(|c| u64::from(c.0)).collect(),
        );
        ins.set(
            g.inputs()[1],
            cases.iter().map(|c| u64::from(c.1)).collect(),
        );
        let t = execute(g, &ins, cases.len()).expect("executes");
        for (k, &(s, key)) in cases.iter().enumerate() {
            assert_eq!(
                t.value(k, g.outputs()[0]) as u32,
                soft_aes_round(s, key),
                "case {k}"
            );
        }
    }

    #[test]
    fn uses_four_rom_reads() {
        let bench = aes();
        assert_eq!(bench.dfg.stats().black_box_ops, 4);
        assert_eq!(bench.dfg.memories().len(), 4);
    }
}
