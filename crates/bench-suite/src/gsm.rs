//! GSM — a short-term filter section from GSM 06.10 full-rate speech
//! coding (paper Table 1, communication).
//!
//! Two filter taps: each multiplies the streamed sample by a reflection
//! coefficient on a hard multiplier (black-box DSP), scales, and
//! accumulates into a saturating accumulator with a decaying loop-carried
//! state — GSM's hallmark saturated fixed-point arithmetic supplies the
//! comparison/mux logic clouds.

use pipemap_ir::{DfgBuilder, NodeId, Target};

use crate::{BenchClass, Benchmark};

const W: u32 = 16;

/// Saturating 16-bit add as logic: overflow when both operands share a
/// sign and the sum's sign differs; clamp to ±max.
fn sat_add(b: &mut DfgBuilder, x: NodeId, y: NodeId) -> NodeId {
    let sum = b.add(x, y);
    let sx = b.bit(x, W - 1);
    let sy = b.bit(y, W - 1);
    let ss = b.bit(sum, W - 1);
    let same = {
        let d = b.xor(sx, sy);
        b.not(d)
    };
    let flipped = b.xor(sx, ss);
    let ovf = b.and(same, flipped);
    let neg_clamp = b.const_(0x8000, W);
    let pos_clamp = b.const_(0x7FFF, W);
    let clamp = b.mux(sx, neg_clamp, pos_clamp);
    b.mux(ovf, clamp, sum)
}

/// Build the GSM benchmark.
pub fn gsm() -> Benchmark {
    let mut b = DfgBuilder::new("gsm_filter");
    let sample = b.input("sample", W);
    let r0 = b.input("r0", W);
    let r1 = b.input("r1", W);

    // Tap products on hard multipliers, scaled down.
    let p0 = b.mul(sample, r0);
    let p0s = b.shr(p0, 3);
    let p1 = b.mul(sample, r1);
    let p1s = b.shr(p1, 3);

    // Decaying saturating accumulator. The tap product enters the loop
    // retimed by one iteration (standard filter retiming), so the
    // recurrence is a single shift + saturating add and fits II = 1.
    let acc_prev = b.placeholder(W);
    let p0s_prev = b.placeholder(W);
    let decayed = b.shr(acc_prev, 1);
    let acc = sat_add(&mut b, decayed, p0s_prev);
    b.bind(acc_prev, acc, 1).expect("accumulator feedback");
    b.bind(p0s_prev, p0s, 1).expect("tap retiming");

    // Feed-forward: fold in the second tap and the raw sample.
    let mixed = sat_add(&mut b, acc, p1s);
    let out = sat_add(&mut b, mixed, sample);
    b.output("filtered", out);
    b.output("acc", acc);

    Benchmark {
        name: "GSM",
        class: BenchClass::Application,
        domain: "Communication",
        description: "Global system for mobile communications",
        dfg: b.finish().expect("gsm graph is valid"),
        target: Target::default(),
    }
}

fn soft_sat_add(x: u16, y: u16) -> u16 {
    let sum = x.wrapping_add(y);
    let sx = x & 0x8000 != 0;
    let sy = y & 0x8000 != 0;
    let ss = sum & 0x8000 != 0;
    if sx == sy && sx != ss {
        if sx {
            0x8000
        } else {
            0x7FFF
        }
    } else {
        sum
    }
}

/// Software reference model: returns `(filtered, acc)` per iteration.
pub fn soft_gsm(samples: &[u16], r0: &[u16], r1: &[u16]) -> Vec<(u16, u16)> {
    let mut acc = 0u16;
    let mut p0s_prev = 0u16;
    let mut out = Vec::new();
    for i in 0..samples.len() {
        let p0s = (samples[i].wrapping_mul(r0[i])) >> 3;
        let p1s = (samples[i].wrapping_mul(r1[i])) >> 3;
        let decayed = acc >> 1;
        acc = soft_sat_add(decayed, p0s_prev);
        p0s_prev = p0s;
        let mixed = soft_sat_add(acc, p1s);
        let filtered = soft_sat_add(mixed, samples[i]);
        out.push((filtered, acc));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_ir::{execute, InputStreams};

    #[test]
    fn saturation_logic_matches() {
        assert_eq!(soft_sat_add(0x7FFF, 0x0001), 0x7FFF); // positive clamp
        assert_eq!(soft_sat_add(0x8000, 0xFFFF), 0x8000); // negative clamp
        assert_eq!(soft_sat_add(0x0010, 0x0020), 0x0030);
    }

    #[test]
    fn graph_matches_soft_model() {
        let bench = gsm();
        let g = &bench.dfg;
        let samples: Vec<u64> = vec![100, 0x7FFF, 0x8000, 500, 0xFFFF, 3, 0x4000, 9];
        let r0: Vec<u64> = vec![3, 7, 1, 0x7FFF, 2, 5, 0x100, 0];
        let r1: Vec<u64> = vec![1, 2, 3, 4, 5, 6, 7, 8];
        let mut ins = InputStreams::new();
        ins.set(g.inputs()[0], samples.clone());
        ins.set(g.inputs()[1], r0.clone());
        ins.set(g.inputs()[2], r1.clone());
        let t = execute(g, &ins, samples.len()).expect("executes");
        let expected = soft_gsm(
            &samples.iter().map(|&v| v as u16).collect::<Vec<_>>(),
            &r0.iter().map(|&v| v as u16).collect::<Vec<_>>(),
            &r1.iter().map(|&v| v as u16).collect::<Vec<_>>(),
        );
        let outs = g.outputs();
        for (k, &(f, a)) in expected.iter().enumerate() {
            assert_eq!(t.value(k, outs[0]) as u16, f, "filtered at {k}");
            assert_eq!(t.value(k, outs[1]) as u16, a, "acc at {k}");
        }
    }

    #[test]
    fn uses_hard_multipliers() {
        let bench = gsm();
        let s = bench.dfg.stats();
        assert_eq!(s.black_box_ops, 2);
        // acc@-1 feeds the decay shift; p0s@-1 feeds the saturating add's
        // sum and sign test.
        assert_eq!(s.loop_carried_edges, 3);
    }
}
