//! GFMUL — Galois-field GF(2⁸) multiplication (paper Table 1, kernel).
//!
//! The efficient shift-and-xor ("Russian peasant") formulation: eight
//! unrolled steps, each conditionally xoring the accumulator with the
//! running multiplicand, doubling the multiplicand modulo the AES field
//! polynomial 0x11B, and shifting the multiplier. Entirely logic — in the
//! paper MILP-map implements it combinationally with zero FFs.

use pipemap_ir::{DfgBuilder, NodeId, Target};

use crate::{BenchClass, Benchmark};

/// Emit the GF(2⁸) product of `a` and `bv` into an existing builder —
/// exposed because the RS decoder uses GFMUL as a sub-kernel (paper §4.2).
pub fn gfmul_into(b: &mut DfgBuilder, a: NodeId, bv: NodeId) -> NodeId {
    let width = 8;
    let mut p = b.const_(0, width);
    let mut acc = a;
    for i in 0..8 {
        // p ^= (b >> i) & 1 ? acc : 0
        let sel = b.bit(bv, i);
        let zero = b.const_(0, width);
        let addend = b.mux(sel, acc, zero);
        p = b.xor(p, addend);
        if i < 7 {
            // acc = xtime(acc): shift left, conditionally reduce by 0x1B.
            let hi = b.bit(acc, 7);
            let dbl = b.shl(acc, 1);
            let poly = b.const_(0x1B, width);
            let red = b.xor(dbl, poly);
            acc = b.mux(hi, red, dbl);
        }
    }
    p
}

/// Software reference implementation (for tests and data generation).
pub fn soft_gfmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80 != 0;
        a <<= 1;
        if hi {
            a ^= 0x1B;
        }
        b >>= 1;
    }
    p
}

/// Build the standalone GFMUL kernel.
pub fn gfmul() -> Benchmark {
    let mut b = DfgBuilder::new("gfmul8");
    let a = b.input("a", 8);
    let x = b.input("b", 8);
    let p = gfmul_into(&mut b, a, x);
    b.output("p", p);
    Benchmark {
        name: "GFMUL",
        class: BenchClass::Kernel,
        domain: "Kernel",
        description: "Efficient Galois field multiplication",
        dfg: b.finish().expect("gfmul graph is valid"),
        target: Target::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_ir::{execute, InputStreams};

    #[test]
    fn matches_reference_on_known_values() {
        // AES test vectors: 0x57 * 0x83 = 0xC1, 0x57 * 0x13 = 0xFE.
        assert_eq!(soft_gfmul(0x57, 0x83), 0xC1);
        assert_eq!(soft_gfmul(0x57, 0x13), 0xFE);
    }

    #[test]
    fn graph_matches_soft_model() {
        let bench = gfmul();
        let g = &bench.dfg;
        let cases = [
            (0x57u64, 0x83u64),
            (0x57, 0x13),
            (0x01, 0xFF),
            (0x00, 0xAB),
            (0xFF, 0xFF),
            (0x53, 0xCA),
        ];
        let mut ins = InputStreams::new();
        ins.set(g.inputs()[0], cases.iter().map(|c| c.0).collect());
        ins.set(g.inputs()[1], cases.iter().map(|c| c.1).collect());
        let t = execute(g, &ins, cases.len()).expect("executes");
        for (k, &(a, b)) in cases.iter().enumerate() {
            assert_eq!(
                t.value(k, g.outputs()[0]),
                u64::from(soft_gfmul(a as u8, b as u8)),
                "{a:#x} * {b:#x}"
            );
        }
    }

    #[test]
    fn exhaustive_against_reference_sampled() {
        let bench = gfmul();
        let g = &bench.dfg;
        let pairs: Vec<(u64, u64)> = (0..256u64)
            .step_by(7)
            .flat_map(|a| (0..256u64).step_by(31).map(move |b| (a, b)))
            .collect();
        let mut ins = InputStreams::new();
        ins.set(g.inputs()[0], pairs.iter().map(|p| p.0).collect());
        ins.set(g.inputs()[1], pairs.iter().map(|p| p.1).collect());
        let t = execute(g, &ins, pairs.len()).expect("executes");
        for (k, &(a, b)) in pairs.iter().enumerate() {
            assert_eq!(
                t.value(k, g.outputs()[0]) as u8,
                soft_gfmul(a as u8, b as u8)
            );
        }
    }

    #[test]
    fn is_pure_logic() {
        let b = gfmul();
        assert_eq!(b.dfg.stats().black_box_ops, 0);
    }
}
