//! `bench-suite compare`: regression gate between two `BENCH_milp.json`
//! reports, plus the append-only run history behind it.
//!
//! The comparison is asymmetric by design: *quality* metrics (status,
//! proven objective, gap, model size) use tight thresholds because the
//! solver is deterministic and those numbers should not move between a
//! baseline and a candidate built from the same model; *timing* metrics
//! (wall-clock, node counts) use generous thresholds because the two
//! reports may come from different machines, budgets, or job counts.
//! A baseline compared against itself always exits 0.

use pipemap_obs::json::{self, Value};

/// Tolerances for the compare gate. Wall-clock is user-tunable
/// (`--wall-tol-pct`); the quality thresholds are fixed and tight.
pub struct CompareOpts {
    /// Extra wall-clock the candidate may spend, as a percentage of the
    /// baseline wall (default 50). A 500 ms absolute floor is always
    /// added so sub-millisecond benches don't flag on scheduler noise.
    pub wall_tol_pct: f64,
    /// Treat benchmarks present in the baseline but absent from the
    /// candidate as skipped rather than regressed (for comparing a
    /// `--quick` run against a committed full-suite baseline).
    pub allow_missing: bool,
}

/// Rank statuses by badness: proven optimum beats any incumbent, any
/// incumbent beats having no answer. `feasible` and `timed-out` share a
/// rank — both mean "valid incumbent, no proof" and which one a capped
/// run reports is a timing artifact.
fn status_rank(s: &str) -> u8 {
    match s {
        "optimal" => 0,
        "feasible" | "timed-out" => 1,
        _ => 2,
    }
}

fn f64_field(b: &Value, key: &str) -> Option<f64> {
    b.get(key).and_then(Value::as_f64)
}

fn opt_f64(b: &Value, key: &str) -> Option<f64> {
    b.get("optimized")
        .and_then(|o| o.get(key))
        .and_then(Value::as_f64)
}

/// One benchmark row reduced to the fields the gate compares.
struct Row {
    name: String,
    status: String,
    objective: Option<f64>,
    gap_rel: Option<f64>,
    wall_ms: Option<f64>,
    nodes: Option<f64>,
    vars: Option<f64>,
    constraints: Option<f64>,
}

fn rows(doc: &Value, path: &str) -> Result<Vec<Row>, String> {
    if doc.get("mode").and_then(Value::as_str) == Some("resolve") {
        return Err(format!(
            "{path}: is a resolve-mode report; compare expects milp-mode reports"
        ));
    }
    let benches = doc
        .get("benchmarks")
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("{path}: no \"benchmarks\" array"))?;
    let mut out = Vec::new();
    for b in benches {
        let name = b
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{path}: benchmark row without a \"name\""))?
            .to_string();
        out.push(Row {
            name,
            status: b
                .get("status")
                .and_then(Value::as_str)
                .unwrap_or("unknown")
                .to_string(),
            objective: f64_field(b, "objective"),
            gap_rel: f64_field(b, "mip_gap_rel"),
            wall_ms: opt_f64(b, "wall_ms"),
            nodes: opt_f64(b, "nodes"),
            vars: opt_f64(b, "milp_vars"),
            constraints: opt_f64(b, "milp_constraints"),
        });
    }
    Ok(out)
}

fn load(path: &str) -> Result<Vec<Row>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    rows(&doc, path)
}

/// Compare a candidate report against a baseline and exit: 0 when no
/// benchmark regressed, 1 on any regression, 2 on malformed input.
pub fn compare_main(base_path: &str, cand_path: &str, opts: &CompareOpts) -> ! {
    let (base, cand) = match (load(base_path), load(cand_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for e in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("[compare] {e}");
            }
            std::process::exit(2);
        }
    };
    let mut regressions: Vec<String> = Vec::new();
    let mut skipped = 0usize;
    let mut compared = 0usize;
    for b in &base {
        let Some(c) = cand.iter().find(|c| c.name == b.name) else {
            if opts.allow_missing {
                skipped += 1;
                continue;
            }
            regressions.push(format!("{}: missing from candidate", b.name));
            continue;
        };
        compared += 1;
        let mut flags: Vec<String> = Vec::new();

        // Quality: tight. Status may only hold or improve.
        if status_rank(&c.status) > status_rank(&b.status) {
            flags.push(format!("status degraded {} -> {}", b.status, c.status));
        }
        // Objective (minimization): a proven baseline optimum is a hard
        // floor; an incumbent-only baseline gets 1% slack since capped
        // searches surface whichever incumbent fit the budget.
        if let (Some(bo), Some(co)) = (b.objective, c.objective) {
            let tol = if b.status == "optimal" {
                1e-6 + 1e-9 * bo.abs()
            } else {
                1e-6 + 0.01 * bo.abs()
            };
            if co > bo + tol {
                flags.push(format!("objective worsened {bo} -> {co}"));
            }
        }
        if let (Some(bg), Some(cg)) = (b.gap_rel, c.gap_rel) {
            if cg > bg + 0.01 {
                flags.push(format!("gap widened {bg:.4} -> {cg:.4}"));
            }
        }
        // Model size is deterministic per formulation: growth beyond
        // rounding means the pruning or presolve lost ground.
        for (what, bv, cv) in [
            ("milp_vars", b.vars, c.vars),
            ("milp_constraints", b.constraints, c.constraints),
        ] {
            if let (Some(bv), Some(cv)) = (bv, cv) {
                if cv > bv * 1.05 + 2.0 {
                    flags.push(format!("{what} grew {bv:.0} -> {cv:.0}"));
                }
            }
        }
        // Effort: generous. Node counts shift with worker interleaving,
        // so only a blow-up on a both-proven search flags.
        if b.status == "optimal" && c.status == "optimal" {
            if let (Some(bn), Some(cn)) = (b.nodes, c.nodes) {
                if cn > bn * 4.0 + 64.0 {
                    flags.push(format!("node count blew up {bn:.0} -> {cn:.0}"));
                }
            }
        }
        // Wall-clock: generous (different machines and budgets).
        if let (Some(bw), Some(cw)) = (b.wall_ms, c.wall_ms) {
            let limit = bw * (1.0 + opts.wall_tol_pct / 100.0) + 500.0;
            if cw > limit {
                flags.push(format!(
                    "wall {bw:.1} ms -> {cw:.1} ms (limit {limit:.1} ms at --wall-tol-pct {})",
                    opts.wall_tol_pct
                ));
            }
        }

        if flags.is_empty() {
            eprintln!(
                "[compare] {:>8}: ok ({}, objective {})",
                c.name,
                c.status,
                c.objective.map_or("null".to_string(), |v| v.to_string())
            );
        } else {
            for f in &flags {
                eprintln!("[compare] {:>8}: REGRESSION: {f}", c.name);
                regressions.push(format!("{}: {f}", c.name));
            }
        }
    }
    eprintln!(
        "[compare] {compared} benchmark(s) compared, {skipped} skipped, {} regression(s) \
         ({base_path} -> {cand_path})",
        regressions.len()
    );
    std::process::exit(i32::from(!regressions.is_empty()));
}

/// Append one compact summary line for this run to
/// `results/bench_history.jsonl`, creating the directory on first use.
/// History is best-effort telemetry: a write failure warns and moves on
/// rather than failing a benchmark run that already produced its report.
pub fn append_history(line: &str) {
    use std::io::Write;
    let dir = std::path::Path::new("results");
    let path = dir.join("bench_history.jsonl");
    let r = std::fs::create_dir_all(dir).and_then(|()| {
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| writeln!(f, "{line}"))
    });
    match r {
        Ok(()) => eprintln!(
            "[bench] history: appended run summary to {}",
            path.display()
        ),
        Err(e) => eprintln!("[bench] history: cannot append to {}: {e}", path.display()),
    }
}

/// Seconds since the Unix epoch, for history timestamps.
pub fn unix_ts() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs())
}
