//! # pipemap-bench-suite
//!
//! The nine benchmarks of the DAC'15 paper's evaluation (Table 1/2),
//! reconstructed as word-level CDFG generators, plus the pedagogical
//! Reed-Solomon encoder kernel of Fig. 1/2.
//!
//! Each generator is parametric and *scaled down* relative to the paper's
//! LLVM instruction counts (86–2503) so that the from-scratch MILP solver
//! in `pipemap-milp` finishes in seconds to minutes instead of requiring
//! CPLEX; the operation mix, black-box usage, and recurrence structure of
//! each kernel are preserved. Default sizes are recorded per module and in
//! `EXPERIMENTS.md`.
//!
//! ```
//! use pipemap_bench_suite::{all, by_name};
//!
//! let suite = all();
//! assert_eq!(suite.len(), 9);
//! let clz = by_name("CLZ").expect("present");
//! assert!(clz.dfg.stats().lut_ops > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use pipemap_ir::{Dfg, Target};

mod aes;
mod clz;
mod cordic;
mod dr;
mod fig1;
mod gfmul;
mod gsm;
mod mt;
mod rs;
mod xorr;

pub use aes::{aes, sbox_table, soft_aes_round};
pub use clz::clz;
pub use cordic::{cordic, soft_cordic};
pub use dr::{dr, soft_dr, training_set};
pub use fig1::rs_encoder_fig1;
pub use gfmul::{gfmul, gfmul_into, soft_gfmul};
pub use gsm::{gsm, soft_gsm};
pub use mt::{mt, soft_mt_stream};
pub use rs::{rs, soft_rs};
pub use xorr::xorr;

/// Kernel vs. full application, as the paper divides Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchClass {
    /// Compute-intensive loop/function, almost entirely logic/arithmetic.
    Kernel,
    /// Complete application with black-box (memory/DSP) operations.
    Application,
}

impl std::fmt::Display for BenchClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BenchClass::Kernel => "Kernel",
            BenchClass::Application => "Application",
        })
    }
}

/// One benchmark: a graph plus the metadata printed in Table 1.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Short name (the paper's Design column).
    pub name: &'static str,
    /// Kernel or application.
    pub class: BenchClass,
    /// Domain column of Table 1.
    pub domain: &'static str,
    /// Description column of Table 1.
    pub description: &'static str,
    /// The benchmark graph.
    pub dfg: Dfg,
    /// Device model to evaluate on (paper: 10 ns target, 4-LUT).
    pub target: Target,
}

/// All nine benchmarks in the paper's Table 1 order.
pub fn all() -> Vec<Benchmark> {
    vec![
        clz::clz(32),
        xorr::xorr(64, 2),
        gfmul::gfmul(),
        cordic::cordic(5),
        mt::mt(),
        aes::aes(),
        rs::rs(),
        dr::dr(),
        gsm::gsm(),
    ]
}

/// Look up a benchmark by its Table 1 name (case-insensitive).
pub fn by_name(name: &str) -> Option<Benchmark> {
    all()
        .into_iter()
        .find(|b| b.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_complete_and_valid() {
        let suite = all();
        let names: Vec<_> = suite.iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            ["CLZ", "XORR", "GFMUL", "CORDIC", "MT", "AES", "RS", "DR", "GSM"]
        );
        for b in &suite {
            assert!(b.dfg.validate().is_ok(), "{} invalid", b.name);
            assert!(!b.dfg.outputs().is_empty(), "{} has no outputs", b.name);
        }
    }

    #[test]
    fn kernels_have_no_black_boxes() {
        for b in all() {
            if b.class == BenchClass::Kernel {
                assert_eq!(
                    b.dfg.stats().black_box_ops,
                    0,
                    "{} should be pure logic",
                    b.name
                );
            }
        }
    }

    #[test]
    fn applications_use_black_boxes() {
        for name in ["AES", "DR", "GSM"] {
            let b = by_name(name).expect("exists");
            assert!(
                b.dfg.stats().black_box_ops > 0,
                "{} should contain black boxes",
                name
            );
        }
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(by_name("gfmul").is_some());
        assert!(by_name("NOPE").is_none());
    }
}
