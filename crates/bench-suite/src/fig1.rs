//! The pedagogical Reed-Solomon encoder kernel of the paper's Fig. 1 and
//! Fig. 2, at the 2-bit width used in Fig. 2.
//!
//! ```text
//! A = s >> 1
//! B = t ^ A
//! C = (B >= 0)          // signed: tests the MSB only
//! D = C ? B : E@-1      // loop-carried feedback from E
//! E = D ^ A
//! ```
//!
//! With 4-input LUTs, a 5 ns target and a uniform 2 ns per operation/LUT
//! (paper Fig. 1), the additive flow needs 3 pipeline stages and 3 LUTs
//! while the mapping-aware schedule fits 2 LUTs chained in a single cycle.

use pipemap_ir::{Dfg, DfgBuilder, NodeId};

/// Build the Fig. 1/2 kernel. Returns the graph plus the ids of nodes
/// `A, B, C, D, E` for inspection and dumps.
pub fn rs_encoder_fig1() -> (Dfg, [NodeId; 5]) {
    let mut b = DfgBuilder::new("rs_encoder_fig1");
    let s = b.input("s", 2);
    let t = b.input("t", 2);
    let e_prev = b.placeholder(2);
    let a = b.shr(s, 1);
    b.name_node(a, "A");
    let bb = b.xor(t, a);
    b.name_node(bb, "B");
    let c = b.is_non_negative(bb);
    b.name_node(c, "C");
    let d = b.mux(c, bb, e_prev);
    b.name_node(d, "D");
    let e = b.xor(d, a);
    b.name_node(e, "E");
    b.bind(e_prev, e, 1).expect("feedback edge binds");
    b.output("out", e);
    (b.finish().expect("fig1 graph is valid"), [a, bb, c, d, e])
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_ir::{execute, InputStreams};

    #[test]
    fn recurrence_semantics() {
        let (g, [_, _, _, _, e]) = rs_encoder_fig1();
        let mut ins = InputStreams::new();
        ins.set(g.inputs()[0], vec![0b10, 0b01, 0b11]);
        ins.set(g.inputs()[1], vec![0b01, 0b10, 0b00]);
        let t = execute(&g, &ins, 3).expect("executes");

        // Software model.
        let mut e_prev = 0u64;
        let mut expected = Vec::new();
        for (s, tt) in [(0b10u64, 0b01u64), (0b01, 0b10), (0b11, 0b00)] {
            let a = s >> 1;
            let b = tt ^ a;
            let c = b & 0b10 == 0; // 2-bit sign test
            let d = if c { b } else { e_prev };
            let e_val = d ^ a;
            expected.push(e_val);
            e_prev = e_val;
        }
        let got: Vec<u64> = (0..3).map(|k| t.value(k, e)).collect();
        assert_eq!(got, expected);
    }
}
