//! XORR — XOR reduction over an array of elements (paper Table 1, kernel).
//!
//! The paper's kernel is a reduction tree of depth 9 over a large array
//! (2047 LLVM instrs); the HLS tool assigns 1.37 ns per XOR, so the
//! additive critical path exceeds the 10 ns target and a 2-stage pipeline
//! is produced, while mapping packs the tree into few LUT levels and a
//! single stage. This generator keeps that story at a reduced size: each
//! element is first masked and whitened (two extra logic levels), then
//! reduced; with 64 elements the additive depth is 8 levels = 10.96 ns >
//! 10 ns.

use pipemap_ir::{DfgBuilder, Target};

use crate::{BenchClass, Benchmark};

/// Build the XORR kernel over `n` elements of `width` bits.
///
/// # Panics
///
/// Panics unless `n` is a power of two ≥ 2.
pub fn xorr(n: usize, width: u32) -> Benchmark {
    assert!(
        n.is_power_of_two() && n >= 2,
        "n must be a power of two >= 2"
    );
    let mut b = DfgBuilder::new(format!("xorr{n}x{width}"));
    let mask = pipemap_ir::mask(width);
    // Whiten + mask each element (deterministic per-element constants).
    let mut level: Vec<_> = (0..n)
        .map(|i| {
            let x = b.input(format!("x{i}"), width);
            let key = b.const_((0x9E37_79B9u64.wrapping_mul(i as u64 + 1)) & mask, width);
            let w = b.xor(x, key);
            let m = b.const_(
                (0x5A5A_5A5A_5A5A_5A5Au64.rotate_left(i as u32)) & mask,
                width,
            );
            b.and(w, m)
        })
        .collect();
    while level.len() > 1 {
        level = level
            .chunks(2)
            .map(|pair| b.xor(pair[0], pair[1]))
            .collect();
    }
    b.output("xorr", level[0]);

    Benchmark {
        name: "XORR",
        class: BenchClass::Kernel,
        domain: "Kernel",
        description: "XOR reduction for an array of elements",
        dfg: b.finish().expect("xorr graph is valid"),
        target: Target::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_ir::{execute, InputStreams};

    #[test]
    fn matches_software_reduction() {
        let n = 16;
        let width = 8;
        let bench = xorr(n, width);
        let g = &bench.dfg;
        let mask = pipemap_ir::mask(width);

        let vals: Vec<u64> = (0..n as u64).map(|i| (i * 37 + 5) & mask).collect();
        let mut ins = InputStreams::new();
        for (i, id) in g.inputs().iter().enumerate() {
            ins.set(*id, vec![vals[i]]);
        }
        let t = execute(g, &ins, 1).expect("executes");

        let expected = vals.iter().enumerate().fold(0u64, |acc, (i, &v)| {
            let key = (0x9E37_79B9u64.wrapping_mul(i as u64 + 1)) & mask;
            let m = (0x5A5A_5A5A_5A5A_5A5Au64.rotate_left(i as u32)) & mask;
            acc ^ ((v ^ key) & m)
        });
        assert_eq!(t.value(0, g.outputs()[0]), expected);
    }

    #[test]
    fn default_size_exceeds_one_additive_cycle() {
        // 2 pre-levels + log2(64) = 8 levels * 1.37 ns > 10 ns.
        let bench = xorr(64, 2);
        let depth_levels = 2 + 6;
        let additive = depth_levels as f64 * bench.target.lut_level_delay();
        assert!(additive > bench.target.t_cp);
    }

    #[test]
    fn tree_shape() {
        let b = xorr(8, 4);
        // 8 inputs, 8 xors + 8 ands pre-stage, 7 reduction xors.
        let s = b.dfg.stats();
        assert_eq!(s.inputs, 8);
        assert_eq!(s.lut_ops, 8 + 8 + 7);
        assert_eq!(s.black_box_ops, 0);
    }
}
