//! # pipemap-core
//!
//! The primary contribution of *"Area-Efficient Pipelining for
//! FPGA-Targeted High-Level Synthesis"* (DAC 2015): **mapping-aware modulo
//! scheduling** formulated as a mixed-integer linear program that schedules
//! operations and selects LUT cuts *simultaneously*, minimizing a weighted
//! sum of LUTs and pipeline registers under a throughput (II) constraint.
//!
//! Three flows are provided, matching the paper's evaluation:
//!
//! * [`Flow::HlsTool`] — an additive-delay heuristic modulo scheduler with
//!   register-bounded downstream mapping (the commercial-tool stand-in),
//! * [`Flow::MilpBase`] — the exact MILP with trivial cuts only,
//! * [`Flow::MilpMap`] — the full mapping-aware MILP (§3.2, Eqs. 2–15).
//!
//! ```no_run
//! use pipemap_core::{run_flow, Flow, FlowOptions};
//! use pipemap_ir::{DfgBuilder, Target};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = DfgBuilder::new("demo");
//! let x = b.input("x", 8);
//! let y = b.input("y", 8);
//! let z = b.xor(x, y);
//! b.output("z", z);
//! let dfg = b.finish()?;
//!
//! let result = run_flow(&dfg, &Target::default(), Flow::MilpMap, &FlowOptions::default())?;
//! println!("LUTs: {}, FFs: {}", result.qor.luts, result.qor.ffs);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod baseline;
mod bounds;
mod decompose;
mod error;
mod flows;
mod formulation;
mod sweep;

pub use baseline::{schedule_baseline, schedule_mapped_heuristic, BaselineResult};

/// Build the raw MILP model for a graph — exposed for profiling binaries
/// and the bench harness; not part of the stable scheduling API.
#[doc(hidden)]
pub fn debug_build_model(
    dfg: &pipemap_ir::Dfg,
    target: &pipemap_ir::Target,
    db: &pipemap_cuts::CutDb,
    ii: u32,
    m: u32,
    alpha: f64,
    beta: f64,
) -> pipemap_milp::Model {
    formulation::build(dfg, target, db, ii, m, alpha, beta).model
}
pub use error::CoreError;
pub use flows::{
    milp_map_model_size, milp_map_model_size_raw, run_all_flows, run_flow, Flow, FlowOptions,
    FlowResult, MilpStats, PrePassStats,
};
pub use sweep::{run_sweep, SweepConfig, SweepPoint, SweepReport};
