//! Design-space sweeps over one incrementally re-solved MILP.
//!
//! A pipelining design-space exploration asks the same model family many
//! closely-related questions: how does the area optimum move with the
//! initiation interval, the LUT input count *K*, and the Eq. 15 weights
//! α/β/γ? Re-building and cold-solving the mapping-aware MILP for every
//! point throws away almost everything the previous point computed.
//!
//! [`run_sweep`] instead groups the points by their *structural* axes
//! (II and K, which change the formulation's rows and columns) and, for
//! each structural base, walks the *weight* axis by editing one
//! [`pipemap_milp::ResolveContext`] in place: each (α, β, γ) point is a
//! batch of objective-coefficient deltas (via
//! `Formulation::objective_deltas`), re-optimized from the previous
//! point's basis and LU factors. The first point of every base is the
//! one unavoidable cold solve; every later point warm-starts.
//!
//! With `incremental` off the same schedule of points is replayed the
//! naive way — cut enumeration, baseline scheduling, formulation build
//! and a cold solve *per point* — which is exactly the comparator the
//! `bench-suite resolve` harness times against.

use std::time::{Duration, Instant};

use pipemap_cuts::{priority_cuts, CutConfig, CutDb, PruneConfig};
use pipemap_ir::{Dfg, Target};
use pipemap_milp::{ResolveStats, SolverOptions, Status};
use pipemap_obs as obs;

use crate::baseline::schedule_baseline;
use crate::error::CoreError;
use crate::formulation;

/// The point grid and solver knobs of one [`run_sweep`] call.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Initiation intervals to sweep (structural axis; paper: {1, 2, 4}).
    pub ii_values: Vec<u32>,
    /// LUT input counts *K* to sweep (structural axis; paper: {4, 6}).
    pub k_values: Vec<u32>,
    /// Eq. 15 weight points (α, β, γ) swept *within* each structural
    /// base as pure objective deltas. Order them as a *path* through
    /// weight space (monotone in α, say): adjacent points then have
    /// nearby optima, so each point's solution seeds the next solve
    /// with a near-optimal incumbent and the re-solve mostly just
    /// proves optimality. The grid of points solved is the same either
    /// way — only the reuse efficiency changes.
    pub weights: Vec<(f64, f64, f64)>,
    /// Per-point solver budget.
    pub time_limit: Duration,
    /// Solver worker threads (determinism holds for every value).
    pub jobs: usize,
    /// Re-solve weight points through a shared context (the point of the
    /// exercise); off replays every point cold for A/B timing.
    pub incremental: bool,
    /// After every incremental point, re-solve the identical model from
    /// scratch and compare status/objective/values
    /// ([`pipemap_milp::ResolveContext::audit`]). Slow; for validation
    /// runs and CI smoke only.
    pub audit: bool,
    /// Cuts kept per node during enumeration.
    pub max_cuts: usize,
    /// Largest cone size during enumeration.
    pub max_cone: u32,
    /// Shrink every base's model with the certified priority-cut
    /// analysis before formulating (on by default — it is the same small
    /// model the MILP-map flow would solve). Both sweep paths use the
    /// identical cut database, so the cold/incremental objective
    /// equality is unaffected.
    pub priority_cuts: bool,
    /// Cuts kept per root by the priority ranking when
    /// [`SweepConfig::priority_cuts`] is on.
    pub max_cuts_per_root: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            ii_values: vec![1, 2, 4],
            k_values: vec![4, 6],
            weights: vec![
                (1.0, 0.0, 0.0),
                (0.75, 0.25, 0.0),
                (0.5, 0.5, 0.0),
                (0.0, 1.0, 0.0),
            ],
            time_limit: Duration::from_secs(10),
            jobs: 1,
            incremental: true,
            audit: false,
            max_cuts: 8,
            max_cone: 24,
            priority_cuts: true,
            max_cuts_per_root: 4,
        }
    }
}

/// One solved point of the sweep grid.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Requested initiation interval.
    pub ii: u32,
    /// II the baseline scheduler actually achieved (bumped when the
    /// requested II admits no schedule); the model solved at this II.
    pub ii_achieved: u32,
    /// LUT input count of this point's target.
    pub k: u32,
    /// LUT-term weight α.
    pub alpha: f64,
    /// Register-term weight β.
    pub beta: f64,
    /// DSP-count weight γ.
    pub gamma: f64,
    /// Solver status.
    pub status: Status,
    /// Optimal (or best incumbent) objective.
    pub objective: f64,
    /// Wall clock for this point. Cold points include cut enumeration,
    /// baseline scheduling and formulation build — the real cost of a
    /// from-scratch evaluation; incremental points only pay the edits
    /// and the re-solve.
    pub wall: Duration,
    /// The point re-optimized from the saved basis (always `false` on
    /// the cold path and on each base's first point).
    pub warm_hit: bool,
    /// The audit verdict (`None` unless [`SweepConfig::audit`]).
    pub audit_ok: Option<bool>,
}

/// Everything [`run_sweep`] measured.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// All points, in (K, II, weight) grid order.
    pub points: Vec<SweepPoint>,
    /// Total wall clock across points (excludes per-K cut enumeration
    /// on the incremental path, which is reported via
    /// [`SweepReport::setup_wall`]).
    pub total_wall: Duration,
    /// Shared setup the incremental path pays once per structural base
    /// (cut DBs, baselines, formulation builds). Zero on the cold path,
    /// where the same work is part of every point's wall.
    pub setup_wall: Duration,
    /// Structural bases built (one re-solve context each).
    pub contexts: usize,
    /// Reuse counters summed over all contexts (`None` when
    /// [`SweepConfig::incremental`] is off).
    pub resolve: Option<ResolveStats>,
    /// Points whose audit found any divergence from a cold solve.
    pub audit_failures: usize,
    /// Structural bases whose formulation proved bit-identical to the
    /// previous base of the same K (model and every delta batch equal):
    /// their points were replayed from the recorded results rather than
    /// re-solved, which determinism makes exact.
    pub bases_deduped: usize,
}

fn cut_config(cfg: &SweepConfig, k: u32) -> CutConfig {
    CutConfig {
        k,
        max_cuts: cfg.max_cuts,
        max_cone: cfg.max_cone,
        ..CutConfig::default()
    }
}

/// The cut database of one structural base — identical for the cold and
/// incremental paths, so point objectives stay comparable.
fn build_db(dfg: &Dfg, cfg: &SweepConfig, k: u32) -> CutDb {
    let _s = obs::span("cut-enum");
    if cfg.priority_cuts {
        priority_cuts(
            dfg,
            &cut_config(cfg, k),
            &PruneConfig {
                max_cuts_per_root: cfg.max_cuts_per_root.min(cfg.max_cuts).max(1),
                raw_cuts: cfg.max_cuts.saturating_mul(2).clamp(8, 32),
                live_bits: None,
            },
        )
        .db
    } else {
        CutDb::enumerate(dfg, &cut_config(cfg, k))
    }
}

fn solver_options(cfg: &SweepConfig) -> SolverOptions {
    SolverOptions {
        time_limit: cfg.time_limit,
        jobs: cfg.jobs.max(1),
        ..SolverOptions::default()
    }
}

/// Run the sweep grid over `dfg`. `target` supplies everything except
/// `k`, which the grid overrides per point.
///
/// Grid order is deterministic: outer K, then II, then the weight list;
/// the incremental and cold paths visit identical points, and the
/// determinism contract of the underlying solver makes the reported
/// status/objective of each point independent of `incremental`.
///
/// # Errors
///
/// Returns [`CoreError`] when some structural base has no feasible
/// baseline schedule at any II, or the solver fails numerically on a
/// point.
pub fn run_sweep(dfg: &Dfg, target: &Target, cfg: &SweepConfig) -> Result<SweepReport, CoreError> {
    let _span = obs::span("sweep");
    let mut report = SweepReport {
        points: Vec::new(),
        total_wall: Duration::ZERO,
        setup_wall: Duration::ZERO,
        contexts: 0,
        resolve: cfg.incremental.then(ResolveStats::default),
        audit_failures: 0,
        bases_deduped: 0,
    };
    // γ only gets a variable in the formulation when the base build sees
    // a positive weight, so build every base with a positive γ iff any
    // weight point uses one (the per-point delta then sets the real
    // coefficient, 0.0 included).
    let build_gamma = cfg.weights.iter().map(|w| w.2).fold(0.0f64, f64::max);
    let opts = solver_options(cfg);
    for &k in &cfg.k_values {
        let target_k = Target {
            k,
            ..target.clone()
        };
        let setup = Instant::now();
        let db = build_db(dfg, cfg, k);
        if cfg.incremental {
            report.setup_wall += setup.elapsed();
        }
        let mut prev: Option<PrevBase> = None;
        for &ii in &cfg.ii_values {
            if cfg.incremental {
                if run_base_incremental(
                    dfg,
                    &target_k,
                    cfg,
                    &db,
                    ii,
                    build_gamma,
                    &opts,
                    &mut report,
                    &mut prev,
                )? {
                    report.contexts += 1;
                }
            } else {
                run_base_cold(dfg, &target_k, cfg, ii, &opts, &mut report)?;
                report.contexts += 1;
            }
        }
    }
    Ok(report)
}

/// The previous structural base of the current K, kept so the next II
/// can prove itself identical and replay instead of re-solving.
struct PrevBase {
    model: pipemap_milp::Model,
    deltas: Vec<Vec<(pipemap_milp::VarId, f64)>>,
    /// Index into [`SweepReport::points`] where this base's points begin.
    start: usize,
}

/// One structural base on the incremental path: build the formulation
/// once, then walk the weight points through a shared context. Returns
/// `false` when the base deduplicated onto the previous one.
#[allow(clippy::too_many_arguments)]
fn run_base_incremental(
    dfg: &Dfg,
    target: &Target,
    cfg: &SweepConfig,
    db: &CutDb,
    ii: u32,
    build_gamma: f64,
    opts: &SolverOptions,
    report: &mut SweepReport,
    prev: &mut Option<PrevBase>,
) -> Result<bool, CoreError> {
    let setup = Instant::now();
    let (f, ii_achieved) = build_base(dfg, target, cfg, db, ii, build_gamma)?;
    let deltas: Vec<Vec<(pipemap_milp::VarId, f64)>> = cfg
        .weights
        .iter()
        .map(|&(a, b, g)| f.objective_deltas(a, b, g))
        .collect();
    // A structural axis does not always bind: CLZ at II=2 formulates the
    // exact same model as at II=1. The solver is deterministic, so when
    // the model AND every weight point's delta batch match the previous
    // base bit-for-bit, the recorded results are this base's results —
    // replay them instead of re-proving each point. (Audit runs want
    // real solves, so they skip the shortcut.)
    if !cfg.audit {
        if let Some(pb) = prev.as_ref() {
            if pb.model.same_problem(&f.model) && pb.deltas == deltas {
                let wall = setup.elapsed();
                for (i, _) in cfg.weights.iter().enumerate() {
                    let src = report.points[pb.start + i].clone();
                    report.points.push(SweepPoint {
                        ii,
                        ii_achieved,
                        wall: if i == 0 { wall } else { Duration::ZERO },
                        warm_hit: true,
                        ..src
                    });
                }
                report.total_wall += wall;
                report.bases_deduped += 1;
                return Ok(false);
            }
        }
    }
    let start_index = report.points.len();
    let mut cx = pipemap_milp::ResolveContext::new(f.model.clone());
    report.setup_wall += setup.elapsed();
    for (&(alpha, beta, gamma), batch) in cfg.weights.iter().zip(&deltas) {
        let start = Instant::now();
        let before = cx.stats();
        for &(v, w) in batch {
            cx.set_objective_coeff(v, w);
        }
        let r = cx.solve(opts).map_err(CoreError::Milp)?;
        let wall = start.elapsed();
        let after = cx.stats();
        let audit_ok = if cfg.audit {
            let a = cx.audit(opts).map_err(CoreError::Milp)?;
            if !a.ok() {
                report.audit_failures += 1;
            }
            Some(a.ok())
        } else {
            None
        };
        report.total_wall += wall;
        report.points.push(SweepPoint {
            ii,
            ii_achieved,
            k: target.k,
            alpha,
            beta,
            gamma,
            status: r.status,
            objective: r.objective,
            wall,
            warm_hit: after.warm_hits > before.warm_hits
                || after.incumbent_seeds > before.incumbent_seeds,
            audit_ok,
        });
    }
    if let Some(total) = report.resolve.as_mut() {
        total.merge(&cx.stats());
    }
    *prev = Some(PrevBase {
        model: f.model.clone(),
        deltas,
        start: start_index,
    });
    Ok(true)
}

/// One structural base on the cold path: every weight point pays cut
/// enumeration, baseline scheduling, the formulation build, and a cold
/// solve — the from-scratch comparator.
fn run_base_cold(
    dfg: &Dfg,
    target: &Target,
    cfg: &SweepConfig,
    ii: u32,
    opts: &SolverOptions,
    report: &mut SweepReport,
) -> Result<(), CoreError> {
    for &(alpha, beta, gamma) in &cfg.weights {
        let start = Instant::now();
        let db = build_db(dfg, cfg, target.k);
        let baseline = schedule_baseline(dfg, target, ii, &db)?;
        let m = baseline.implementation.schedule.depth();
        let f = formulation::build_weighted(dfg, target, &db, baseline.ii, m, alpha, beta, gamma);
        let r = {
            let _s = obs::span("sweep-cold-solve");
            f.model.solve(opts).map_err(CoreError::Milp)?
        };
        let wall = start.elapsed();
        report.total_wall += wall;
        report.points.push(SweepPoint {
            ii,
            ii_achieved: baseline.ii,
            k: target.k,
            alpha,
            beta,
            gamma,
            status: r.status,
            objective: r.objective,
            wall,
            warm_hit: false,
            audit_ok: None,
        });
    }
    Ok(())
}

/// Baseline-schedule and build one structural base's formulation.
fn build_base(
    dfg: &Dfg,
    target: &Target,
    cfg: &SweepConfig,
    db: &CutDb,
    ii: u32,
    build_gamma: f64,
) -> Result<(formulation::Formulation, u32), CoreError> {
    let baseline = {
        let _s = obs::span("baseline");
        schedule_baseline(dfg, target, ii, db)?
    };
    let m = baseline.implementation.schedule.depth();
    let (alpha0, beta0, _) = cfg.weights.first().copied().unwrap_or((0.5, 0.5, 0.0));
    let f = {
        let _s = obs::span("milp-build");
        formulation::build_weighted(dfg, target, db, baseline.ii, m, alpha0, beta0, build_gamma)
    };
    Ok((f, baseline.ii))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_ir::DfgBuilder;

    fn kernel() -> Dfg {
        let mut b = DfgBuilder::new("sweep_kernel");
        let x = b.input("x", 4);
        let y = b.input("y", 4);
        let a = b.xor(x, y);
        let c = b.and(a, x);
        let d = b.or(c, y);
        b.output("out", d);
        b.finish().expect("valid dfg")
    }

    fn small_cfg(incremental: bool) -> SweepConfig {
        SweepConfig {
            ii_values: vec![1, 2],
            k_values: vec![4],
            weights: vec![(1.0, 0.0, 0.0), (0.5, 0.5, 0.0), (0.25, 0.75, 0.0)],
            time_limit: Duration::from_secs(20),
            incremental,
            ..SweepConfig::default()
        }
    }

    #[test]
    fn incremental_sweep_matches_cold_pointwise() {
        let g = kernel();
        let t = Target::default();
        let warm = run_sweep(&g, &t, &small_cfg(true)).expect("incremental sweep");
        let cold = run_sweep(&g, &t, &small_cfg(false)).expect("cold sweep");
        assert_eq!(warm.points.len(), 6);
        assert_eq!(cold.points.len(), 6);
        for (w, c) in warm.points.iter().zip(cold.points.iter()) {
            assert_eq!((w.ii, w.k, w.alpha, w.beta), (c.ii, c.k, c.alpha, c.beta));
            assert_eq!(
                w.status, c.status,
                "status diverged at ii={} α={}",
                w.ii, w.alpha
            );
            assert!(
                (w.objective - c.objective).abs() <= 1e-6,
                "objective diverged at ii={} α={}: {} vs {}",
                w.ii,
                w.alpha,
                w.objective,
                c.objective
            );
        }
        let rs = warm.resolve.expect("resolve stats");
        // The test kernel's formulation is II-insensitive, so the II=2
        // base dedups onto II=1: only the first base's points solve.
        assert_eq!(warm.bases_deduped, 1, "stats: {rs:?}");
        assert_eq!(rs.solves, 3);
        // The first point is the one unavoidable cold solve; at least
        // some later point must have reused prior state (a seeded
        // incumbent or a warm basis) for the engine to matter.
        assert!(
            rs.warm_hits + rs.incumbent_seeds >= 1,
            "no state reuse across the sweep: {rs:?}"
        );
        assert!(cold.resolve.is_none());
    }

    #[test]
    fn audited_sweep_reports_no_failures() {
        let g = kernel();
        let t = Target::default();
        let cfg = SweepConfig {
            audit: true,
            ..small_cfg(true)
        };
        let rep = run_sweep(&g, &t, &cfg).expect("audited sweep");
        assert_eq!(rep.audit_failures, 0);
        assert!(rep.points.iter().all(|p| p.audit_ok == Some(true)));
    }
}
