//! The heuristic baseline flow — our stand-in for the commercial HLS tool
//! of the paper's evaluation (§4).
//!
//! It reproduces the two properties the paper attributes to such tools:
//!
//! 1. **Additive-delay modulo scheduling**: a chaining-aware ASAP list
//!    scheduler where every operation contributes its full characterized
//!    delay (no mapping awareness), with a modulo reservation table for
//!    black-box resources. The II is bumped when recurrences or resources
//!    make the requested II infeasible.
//! 2. **Register-bounded downstream mapping**: technology mapping runs
//!    *after* scheduling and must respect the register boundaries the
//!    scheduler inserted — cones never span cycles. This is precisely the
//!    pessimism the mapping-aware MILP removes.

use std::collections::{BTreeSet, HashMap};

use pipemap_cuts::{cone_nodes, Cut, CutDb};
use pipemap_ir::{Dfg, NodeId, Op, Target};
use pipemap_netlist::{Cover, Implementation, Schedule};

use crate::error::CoreError;

/// A list schedule: per-node cycles and intra-cycle start times.
type ListSchedule = (Vec<u32>, Vec<f64>);
/// Callback enumerating the boundary signals of one mapping choice.
type BoundaryVisitor<'a> = &'a dyn Fn(&mut dyn FnMut(NodeId, u32));
/// A mapped list schedule: cycles, starts, and per-node best-cut choices.
type MappedListSchedule = (Vec<u32>, Vec<f64>, Vec<Option<Cut>>);

/// Result of the baseline flow.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    /// The schedule + register-bounded mapping.
    pub implementation: Implementation,
    /// The II actually achieved (≥ the requested II).
    pub ii: u32,
}

/// Run the baseline heuristic flow at the requested II (bumping it if
/// infeasible). `db` supplies the cuts available to the *downstream*
/// mapper; scheduling itself is mapping-agnostic.
///
/// # Errors
///
/// Returns [`CoreError::IiInfeasible`] if no II up to an internal cap
/// admits a legal schedule.
pub fn schedule_baseline(
    dfg: &Dfg,
    target: &Target,
    requested_ii: u32,
    db: &CutDb,
) -> Result<BaselineResult, CoreError> {
    let cap = requested_ii * 8 + 8;
    let mut ii = requested_ii.max(1);
    while ii <= cap {
        if let Some((cycles, starts)) = list_schedule(dfg, target, ii) {
            let cover = map_respecting_registers(dfg, db, &cycles);
            let implementation = Implementation {
                schedule: Schedule::new(ii, cycles, starts),
                cover,
            };
            pipemap_netlist::verify(dfg, target, &implementation)
                .map_err(CoreError::IllegalImplementation)?;
            return Ok(BaselineResult { implementation, ii });
        }
        ii += 1;
    }
    Err(CoreError::IiInfeasible {
        requested: requested_ii,
        tried_up_to: cap,
    })
}

/// Chaining-aware additive ASAP list scheduling with a modulo reservation
/// table. Returns `None` when the II is infeasible (recurrence violated or
/// a resource class cannot fit).
pub(crate) fn list_schedule(dfg: &Dfg, target: &Target, ii: u32) -> Option<ListSchedule> {
    let order = dfg.topo_order().expect("validated graph");
    let mut cycles = vec![0u32; dfg.len()];
    let mut starts = vec![0.0f64; dfg.len()];
    let mut finish = vec![(0u32, 0.0f64); dfg.len()]; // completion (cycle, ns)
    let mut mrt: HashMap<(pipemap_ir::Resource, u32), u32> = HashMap::new();

    for &v in &order {
        let node = dfg.node(v);
        if matches!(node.op, Op::Input | Op::Const(_)) {
            continue;
        }
        // Ready stamp from distance-0 predecessors.
        let mut ready = (0u32, 0.0f64);
        for p in &node.ins {
            if p.dist == 0 {
                let f = finish[p.node.index()];
                if (f.0, f.1) > ready {
                    ready = f;
                }
            }
        }
        let lat = target.op_latency(&node.op, node.width);
        let d = target.op_delay(&node.op, node.width);
        let local = (d - f64::from(lat) * target.t_cp).max(0.0);

        let (mut cycle, mut time) = ready;
        if lat > 0 {
            // Multi-cycle ops start at a cycle boundary.
            if time > 1e-9 {
                cycle += 1;
            }
            time = 0.0;
        } else if time + local > target.t_cp + 1e-9 {
            cycle += 1;
            time = 0.0;
        }

        // Modulo reservation table for resource-limited ops.
        if let Some(res) = node.op.resource() {
            if let Some(limit) = target.resource_limit(res) {
                let mut placed = false;
                for probe in 0..ii {
                    let c = cycle + probe;
                    let slot = c % ii;
                    let used = mrt.get(&(res, slot)).copied().unwrap_or(0);
                    if used < limit {
                        *mrt.entry((res, slot)).or_insert(0) += 1;
                        if c != cycle {
                            time = 0.0;
                        }
                        cycle = c;
                        placed = true;
                        break;
                    }
                }
                if !placed {
                    return None; // every modulo slot full: bump II
                }
            }
        }

        cycles[v.index()] = cycle;
        starts[v.index()] = time;
        finish[v.index()] = if lat > 0 {
            (cycle + lat, local)
        } else {
            (cycle, time + local)
        };
    }

    // Loop-carried (recurrence) feasibility at this II, including
    // intra-cycle timing when producer and consumer land in the same
    // effective cycle.
    for (w, node) in dfg.iter() {
        for p in &node.ins {
            if p.dist == 0 {
                continue;
            }
            let (fc, ft) = finish[p.node.index()];
            let deadline = cycles[w.index()] + ii * p.dist;
            if fc > deadline || (fc == deadline && ft > starts[w.index()] + 1e-9) {
                return None;
            }
        }
    }
    Some((cycles, starts))
}

/// Mapping-aware list scheduling — the scalable heuristic the paper lists
/// as future work (§5): identical to the additive list scheduler, but each
/// LUT-mappable node's ready/finish time is the best over its enumerated
/// cuts (absorbed logic contributes no delay). The resulting schedule is
/// then covered by the register-bounded area mapper.
///
/// Used to seed the MILP-map solver with a strong incumbent; exposed via
/// [`schedule_mapped_heuristic`].
pub(crate) fn list_schedule_with_cuts(
    dfg: &Dfg,
    target: &Target,
    ii: u32,
    db: &CutDb,
) -> Option<MappedListSchedule> {
    let order = dfg.topo_order().expect("validated graph");
    let mut cycles = vec![0u32; dfg.len()];
    let mut starts = vec![0.0f64; dfg.len()];
    let mut finish = vec![(0u32, 0.0f64); dfg.len()];
    let mut choices: Vec<Option<Cut>> = vec![None; dfg.len()];
    let mut mrt: HashMap<(pipemap_ir::Resource, u32), u32> = HashMap::new();

    for &v in &order {
        let node = dfg.node(v);
        if matches!(node.op, Op::Input | Op::Const(_)) {
            continue;
        }
        let lat = target.op_latency(&node.op, node.width);
        let d = target.op_delay(&node.op, node.width);
        let local = (d - f64::from(lat) * target.t_cp).max(0.0);

        // Ready stamp: for LUT ops, the best over enumerated cuts; others
        // read their ports directly.
        let ready_of = |boundary: BoundaryVisitor| {
            let mut ready = (0u32, 0.0f64);
            boundary(&mut |u, dist| {
                if dist == 0 {
                    let f = finish[u.index()];
                    if (f.0, f.1) > ready {
                        ready = f;
                    }
                }
            });
            ready
        };
        let ready = if node.op.is_lut_mappable() && !db.cuts(v).is_empty() {
            let mut best: Option<(u32, f64)> = None;
            for cut in db.cuts(v).cuts() {
                let r = ready_of(&|f| {
                    for sig in cut.inputs() {
                        f(sig.node, sig.dist);
                    }
                });
                if best.is_none_or(|b| (r.0, r.1) < b) {
                    best = Some(r);
                    choices[v.index()] = Some(cut.clone());
                }
            }
            best.unwrap_or((0, 0.0))
        } else {
            ready_of(&|f| {
                for p in &node.ins {
                    f(p.node, p.dist);
                }
            })
        };

        let (mut cycle, mut time) = ready;
        if lat > 0 {
            if time > 1e-9 {
                cycle += 1;
            }
            time = 0.0;
        } else if time + local > target.t_cp + 1e-9 {
            cycle += 1;
            time = 0.0;
        }
        if let Some(res) = node.op.resource() {
            if let Some(limit) = target.resource_limit(res) {
                let mut placed = false;
                for probe in 0..ii {
                    let c = cycle + probe;
                    let slot = c % ii;
                    let used = mrt.get(&(res, slot)).copied().unwrap_or(0);
                    if used < limit {
                        *mrt.entry((res, slot)).or_insert(0) += 1;
                        if c != cycle {
                            time = 0.0;
                        }
                        cycle = c;
                        placed = true;
                        break;
                    }
                }
                if !placed {
                    return None;
                }
            }
        }
        cycles[v.index()] = cycle;
        starts[v.index()] = time;
        finish[v.index()] = if lat > 0 {
            (cycle + lat, local)
        } else {
            (cycle, time + local)
        };
    }

    for (w, node) in dfg.iter() {
        for p in &node.ins {
            if p.dist == 0 {
                continue;
            }
            let (fc, ft) = finish[p.node.index()];
            let deadline = cycles[w.index()] + ii * p.dist;
            if fc > deadline || (fc == deadline && ft > starts[w.index()] + 1e-9) {
                return None;
            }
        }
    }
    Some((cycles, starts, choices))
}

/// Build a cover from per-node cut choices: exactly the signals reachable
/// from primary outputs and black-box/output ports through the chosen
/// cuts become roots. Cross-cycle cones are legal here — cut inputs are
/// registered values.
fn cover_from_choices(dfg: &Dfg, db: &CutDb, choices: &[Option<Cut>]) -> Cover {
    let mut selected: Vec<Option<Cut>> = vec![None; dfg.len()];
    let mut work: Vec<NodeId> = Vec::new();
    for (_, node) in dfg.iter() {
        if node.op.is_lut_mappable() {
            continue;
        }
        for p in &node.ins {
            if dfg.node(p.node).op.is_lut_mappable() {
                work.push(p.node);
            }
        }
    }
    let mut i = 0;
    while i < work.len() {
        let v = work[i];
        i += 1;
        if selected[v.index()].is_some() {
            continue;
        }
        let cut = choices[v.index()]
            .clone()
            .or_else(|| db.cuts(v).unit().cloned())
            .expect("LUT-mappable nodes always have a unit cut");
        for sig in cut.inputs() {
            if dfg.node(sig.node).op.is_lut_mappable() && selected[sig.node.index()].is_none() {
                work.push(sig.node);
            }
        }
        selected[v.index()] = Some(cut);
    }
    Cover::new(selected)
}

/// Run the mapping-aware heuristic flow: schedule with cut-aware delays,
/// then cover with the register-bounded area mapper — falling back to the
/// scheduler's own depth-optimal cut choices when the greedy cover misses
/// timing. Returns `None` when no II up to the cap schedules.
pub fn schedule_mapped_heuristic(
    dfg: &Dfg,
    target: &Target,
    requested_ii: u32,
    db: &CutDb,
) -> Option<BaselineResult> {
    let cap = requested_ii * 8 + 8;
    let mut ii = requested_ii.max(1);
    while ii <= cap {
        if let Some((cycles, starts, choices)) = list_schedule_with_cuts(dfg, target, ii, db) {
            let schedule = Schedule::new(ii, cycles.clone(), starts);
            // Preferred: area-greedy per-cycle cover.
            let area = Implementation {
                cover: map_respecting_registers(dfg, db, &cycles),
                schedule: schedule.clone(),
            };
            if pipemap_netlist::verify(dfg, target, &area).is_ok() {
                return Some(BaselineResult {
                    implementation: area,
                    ii,
                });
            }
            // Fallback: the depth-optimal cuts the scheduler timed with.
            let depth = Implementation {
                cover: cover_from_choices(dfg, db, &choices),
                schedule,
            };
            if pipemap_netlist::verify(dfg, target, &depth).is_ok() {
                return Some(BaselineResult {
                    implementation: depth,
                    ii,
                });
            }
        }
        ii += 1;
    }
    None
}

/// Re-cover an existing schedule with the register-bounded mapper — used
/// to implement MILP-base schedules the way the paper's downstream tool
/// chain would.
pub(crate) fn remap_schedule(dfg: &Dfg, db: &CutDb, schedule: &pipemap_netlist::Schedule) -> Cover {
    let cycles: Vec<u32> = dfg.node_ids().map(|v| schedule.cycle(v)).collect();
    map_respecting_registers(dfg, db, &cycles)
}

/// Greedy area-oriented per-cycle technology mapping: cover every value
/// that must exist as a physical signal, choosing for each root the
/// largest-cone cut that stays within the root's cycle and does not
/// duplicate other required signals.
pub(crate) fn map_respecting_registers(dfg: &Dfg, db: &CutDb, cycles: &[u32]) -> Cover {
    // Values that must be physical signals.
    let mut required: BTreeSet<NodeId> = BTreeSet::new();
    for (w, node) in dfg.iter() {
        let direct_reader = !node.op.is_lut_mappable(); // BB and outputs
        for p in &node.ins {
            if matches!(dfg.node(p.node).op, Op::Const(_) | Op::Input) {
                continue;
            }
            let crosses = p.dist > 0 || cycles[p.node.index()] != cycles[w.index()];
            if direct_reader || crosses {
                required.insert(p.node);
            }
        }
    }
    required.retain(|v| dfg.node(*v).op.is_lut_mappable());

    let mut selected: Vec<Option<Cut>> = vec![None; dfg.len()];
    // Reverse topological order: consumers choose before producers so the
    // required set below any node is final when it is processed.
    let order = dfg.topo_order().expect("validated graph");
    let mut worklist: Vec<NodeId> = order.iter().rev().copied().collect();
    let mut i = 0;
    while i < worklist.len() {
        let v = worklist[i];
        i += 1;
        if !required.contains(&v) || selected[v.index()].is_some() {
            continue;
        }
        let my_cycle = cycles[v.index()];
        // Candidates: cones entirely within this cycle, not duplicating
        // required interior signals.
        let mut best: Option<&Cut> = None;
        for cut in db.cuts(v).cuts() {
            let cone = cone_nodes(dfg, v, cut);
            let ok = cone
                .iter()
                .all(|&n| cycles[n.index()] == my_cycle && (n == v || !required.contains(&n)));
            if !ok {
                continue;
            }
            let better = match best {
                None => true,
                Some(b) => {
                    (cut.cone_size(), std::cmp::Reverse(cut.len()))
                        > (b.cone_size(), std::cmp::Reverse(b.len()))
                }
            };
            if better {
                best = Some(cut);
            }
        }
        let chosen = best
            .or_else(|| db.cuts(v).unit())
            .expect("LUT-mappable nodes always own a unit cut")
            .clone();
        // Cut inputs become required signals in turn.
        for sig in chosen.inputs() {
            let s = sig.node;
            if dfg.node(s).op.is_lut_mappable() && required.insert(s) {
                worklist.push(s);
            }
        }
        selected[v.index()] = Some(chosen);
    }
    Cover::new(selected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_cuts::CutConfig;
    use pipemap_ir::{DfgBuilder, InputStreams};
    use pipemap_netlist::{verify_functional, Qor};

    fn xor_chain(n: usize) -> Dfg {
        let mut b = DfgBuilder::new("chain");
        let x = b.input("x", 8);
        let y = b.input("y", 8);
        let mut cur = b.xor(x, y);
        for _ in 1..n {
            cur = b.xor(cur, y);
        }
        b.output("o", cur);
        b.finish().expect("valid")
    }

    #[test]
    fn additive_chain_splits_cycles() {
        // 9 xors * 1.37 ns = 12.33 ns > 10 ns: baseline needs 2 cycles.
        let g = xor_chain(9);
        let t = Target::default();
        let db = CutDb::enumerate(&g, &CutConfig::for_target(&t));
        let r = schedule_baseline(&g, &t, 1, &db).expect("schedules");
        assert_eq!(r.ii, 1);
        assert_eq!(r.implementation.schedule.depth(), 2);
        // Registers exist at the boundary.
        let q = Qor::evaluate(&g, &t, &r.implementation);
        assert!(q.ffs > 0, "pipeline registers expected, got {q:?}");
    }

    #[test]
    fn baseline_is_functionally_correct() {
        let g = xor_chain(9);
        let t = Target::default();
        let db = CutDb::enumerate(&g, &CutConfig::for_target(&t));
        let r = schedule_baseline(&g, &t, 1, &db).expect("schedules");
        let ins = InputStreams::random(&g, 25, 41);
        verify_functional(&g, &t, &r.implementation, &ins, 25).expect("functional");
    }

    #[test]
    fn mapper_respects_register_boundaries() {
        let g = xor_chain(9);
        let t = Target::default();
        let db = CutDb::enumerate(&g, &CutConfig::for_target(&t));
        let r = schedule_baseline(&g, &t, 1, &db).expect("schedules");
        for root in r.implementation.cover.roots() {
            let cut = r.implementation.cover.cut(root).expect("root cut");
            for n in cone_nodes(&g, root, cut) {
                assert_eq!(
                    r.implementation.schedule.cycle(n),
                    r.implementation.schedule.cycle(root),
                    "cone crosses a register boundary"
                );
            }
        }
    }

    #[test]
    fn mapper_still_packs_within_cycles() {
        // Within one cycle the downstream mapper should absorb logic: far
        // fewer LUT roots than ops.
        let g = xor_chain(6); // 6*1.37 = 8.2 ns: single cycle
        let t = Target::default();
        let db = CutDb::enumerate(&g, &CutConfig::for_target(&t));
        let r = schedule_baseline(&g, &t, 1, &db).expect("schedules");
        let roots = r.implementation.cover.roots().count();
        assert!(roots < 6, "mapper should absorb xors, got {roots} roots");
    }

    #[test]
    fn resource_conflicts_bump_ii() {
        let mut b = DfgBuilder::new("mem3");
        let m = b.add_memory("t", 8, vec![1, 2, 3, 4]);
        let a1 = b.input("a1", 4);
        let a2 = b.input("a2", 4);
        let a3 = b.input("a3", 4);
        let v1 = b.load(m, a1);
        let v2 = b.load(m, a2);
        let v3 = b.load(m, a3);
        let x = b.xor(v1, v2);
        let y = b.xor(x, v3);
        b.output("o", y);
        let g = b.finish().expect("valid");
        let t = Target {
            mem_ports: 2, // 3 loads, 2 ports: II=1 impossible
            ..Target::default()
        };
        let db = CutDb::enumerate(&g, &CutConfig::for_target(&t));
        let r = schedule_baseline(&g, &t, 1, &db).expect("schedules");
        assert_eq!(r.ii, 2);
    }

    #[test]
    fn tight_recurrence_bumps_ii() {
        // A recurrence whose additive chain cannot fit one cycle at II=1:
        // acc' = ((acc + x) + y) + z with distance 1, adds ~2 ns each at a
        // 5 ns clock -> needs II 2.
        let mut b = DfgBuilder::new("rec");
        let x = b.input("x", 32);
        let y = b.input("y", 32);
        let z = b.input("z", 32);
        let prev = b.placeholder(32);
        let a1 = b.add(prev, x);
        let a2 = b.add(a1, y);
        let a3 = b.add(a2, z);
        b.bind(prev, a3, 1).expect("bind");
        b.output("o", a3);
        let g = b.finish().expect("valid");
        let t = Target {
            t_cp: 5.0, // three 32-bit adds ~ 2.1 ns each: 6.4 ns > 5 ns
            ..Target::default()
        };
        let db = CutDb::enumerate(&g, &CutConfig::for_target(&t));
        let r = schedule_baseline(&g, &t, 1, &db).expect("schedules");
        assert!(r.ii >= 2, "expected II bump, got {}", r.ii);
        let ins = InputStreams::random(&g, 20, 5);
        verify_functional(&g, &t, &r.implementation, &ins, 20).expect("functional");
    }
}
