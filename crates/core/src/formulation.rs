//! The mapping-aware modulo-scheduling MILP (paper §3.2, Eqs. 2–15).
//!
//! Variables per node `v`:
//!
//! * one-hot schedule binaries `s_{v,t}` over the window `[ASAP_v, ALAP_v]`
//!   (Eqs. 5–6; `S_v` is an expression, not a variable),
//! * cut selectors `c_{v,i}` per enumerated cut (Eq. 2; `root_v = Σ c` is
//!   an expression),
//! * continuous intra-cycle start `L_v ∈ [0, T_cp − d_v]` (Eq. 8 folded
//!   into the bound),
//! * continuous lifetime `len_v ≥ 0`.
//!
//! **Register reformulation.** The paper prices registers with per-cycle
//! liveness variables (Eqs. 10–13). Expanded literally this multiplies the
//! row count by the latency bound; we instead price the *lifetime length*
//!
//! ```text
//! len_u ≥ S_w + II·dist − (S_u + lat_u) − M·(1 − c_{w,i})   ∀ u ∈ CUT_w[i]
//! ```
//!
//! whose minimized value `Σ_t live_{u,t} = max(0, last_use − avail)`
//! matches the paper's `Σ_m Reg(m)` exactly (the II-folded sum in Eq. 13
//! telescopes to the total number of live value-cycles). The per-cycle
//! def/kill/live accounting is still implemented verbatim in
//! `pipemap-netlist`'s QoR evaluation, so the objective and the reported
//! FF counts agree by construction.
//!
//! Eq. (9) is implemented with the producer's completion latency added
//! (`S_u + lat_u`) so multi-cycle black boxes chain correctly, and the
//! delay term gated by `c_{w,i}` exactly as printed — unselected cuts
//! degrade to pure `L` ordering between ancestors, matching the paper's
//! reading that interior nodes share their root's cycle.

use pipemap_cuts::{cone_nodes, CutDb};
use pipemap_ir::{Dfg, NodeId, Op, Target};
use pipemap_milp::{LinExpr, Model, Sense, VarId};
use pipemap_netlist::{Cover, Implementation, Schedule};

use crate::bounds::{absorbable_nodes, alap_optimistic, asap_optimistic};

/// The constructed model plus the variable maps needed to extract and seed
/// solutions.
#[derive(Debug)]
pub(crate) struct Formulation {
    pub model: Model,
    /// Per node: `(cycle, var)` pairs of the one-hot schedule binaries.
    s_vars: Vec<Vec<(u32, VarId)>>,
    /// Per node: cut-selector variables, aligned with `CutDb` order.
    c_vars: Vec<Vec<VarId>>,
    l_vars: Vec<Option<VarId>>,
    len_vars: Vec<Option<VarId>>,
    /// `(cut selector, LUT bit unit)` pairs: the α-weighted objective
    /// slots (0 units for pure-wire cones). Kept so a weight sweep can
    /// re-cost the objective as in-place deltas instead of rebuilding.
    alpha_units: Vec<(VarId, f64)>,
    /// `(lifetime var, FF bit unit)` pairs: the β-weighted slots.
    beta_units: Vec<(VarId, f64)>,
    /// The γ-weighted DSP-count variable, when the model was built with
    /// one (`gamma > 0.0` at build time).
    x_mult: Option<VarId>,
    ii: u32,
    m: u32,
}

fn local_delay(target: &Target, op: &Op, width: u32) -> f64 {
    let lat = target.op_latency(op, width);
    (target.op_delay(op, width) - f64::from(lat) * target.t_cp).max(0.0)
}

/// `S_v` as a linear expression (`Σ t·s_{v,t}`; 0 for inputs/constants).
fn s_expr(f: &Formulation, v: NodeId) -> LinExpr {
    let mut e = LinExpr::new();
    for &(t, var) in &f.s_vars[v.index()] {
        e.add_term(f64::from(t), var);
    }
    e
}

/// Does this node get schedule variables?
fn schedulable(op: &Op) -> bool {
    !matches!(op, Op::Input | Op::Const(_))
}

/// Does this node produce a registered value (and thus get a lifetime
/// variable)? Inputs count: a late-consumed input must be held in FFs.
fn signal_producer(op: &Op) -> bool {
    op.is_lut_mappable() || op.is_black_box() || matches!(op, Op::Input)
}

/// Build the full MILP for one graph at the given II and latency bound
/// `m` (cycles), with the paper's α/β objective weights.
pub(crate) fn build(
    dfg: &Dfg,
    target: &Target,
    db: &CutDb,
    ii: u32,
    m: u32,
    alpha: f64,
    beta: f64,
) -> Formulation {
    build_weighted(dfg, target, db, ii, m, alpha, beta, 0.0)
}

/// [`build`] plus the optional DSP-count term: a variable `X_mult` bounds
/// the per-slot multiplier usage (Eq. 14's `X_r`) and enters the
/// objective with weight γ — the resource extension §3.2 invites.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_weighted(
    dfg: &Dfg,
    target: &Target,
    db: &CutDb,
    ii: u32,
    m: u32,
    alpha: f64,
    beta: f64,
    gamma: f64,
) -> Formulation {
    let model = Model::new(format!("{}-ii{}", dfg.name(), ii));
    let mut f = Formulation {
        model,
        s_vars: vec![Vec::new(); dfg.len()],
        c_vars: vec![Vec::new(); dfg.len()],
        l_vars: vec![None; dfg.len()],
        len_vars: vec![None; dfg.len()],
        alpha_units: Vec::new(),
        beta_units: Vec::new(),
        x_mult: None,
        ii,
        m,
    };
    let t_cp = target.t_cp;
    let max_dist = dfg
        .iter()
        .flat_map(|(_, n)| n.ins.iter().map(|p| p.dist))
        .max()
        .unwrap_or(0);
    let big_m = f64::from(m + ii * max_dist + 1) * 2.0;

    let asap = asap_optimistic(dfg, target, db);
    let alap = alap_optimistic(dfg, target, m, &absorbable_nodes(dfg, db));

    // ---- variables -------------------------------------------------------
    for (id, node) in dfg.iter() {
        if schedulable(&node.op) {
            let lo = asap[id.index()].min(m - 1);
            let hi = alap[id.index()].max(lo).min(m - 1);
            for t in lo..=hi {
                let v = f.model.add_binary(0.0);
                f.s_vars[id.index()].push((t, v));
            }
            // Intra-cycle start L_v with Eq. (8) folded into the bound;
            // multi-cycle ops are pinned to the cycle boundary.
            if !matches!(node.op, Op::Output) {
                let lat = target.op_latency(&node.op, node.width);
                let ub = if lat > 0 {
                    0.0
                } else {
                    (t_cp - local_delay(target, &node.op, node.width)).max(0.0)
                };
                f.l_vars[id.index()] = Some(f.model.add_continuous(0.0, ub, 0.0));
            }
        }
        if node.op.is_lut_mappable() {
            for cut in db.cuts(id).cuts() {
                // Objective Eq. (15), LUT term: Bits(v) per selected root,
                // except cones that are pure wiring (cost nothing in
                // fabric — mirrored in the QoR evaluator).
                let cone = cone_nodes(dfg, id, cut);
                let pure_wire = cone.iter().all(|&n| dfg.node(n).op.is_wire());
                let unit = if pure_wire {
                    0.0
                } else {
                    f64::from(node.width)
                };
                let c = f.model.add_binary(alpha * unit);
                f.alpha_units.push((c, unit));
                f.c_vars[id.index()].push(c);
            }
        }
        if signal_producer(&node.op) {
            // Objective Eq. (15), register term: β · Bits(v) · len_v.
            let unit = f64::from(node.width);
            let len = f.model.add_continuous(0.0, big_m, beta * unit);
            f.beta_units.push((len, unit));
            f.len_vars[id.index()] = Some(len);
        }
    }

    // ---- Eq. 5: one-hot schedule ------------------------------------------
    for (id, node) in dfg.iter() {
        if schedulable(&node.op) {
            let e: LinExpr = f.s_vars[id.index()]
                .iter()
                .map(|&(_, v)| (1.0, v))
                .collect();
            f.model.add_constraint(e, Sense::Eq, 1.0);
        }
    }

    // ---- Eqs. 2–4: cover --------------------------------------------------
    let root_expr = |f: &Formulation, v: NodeId| -> LinExpr {
        f.c_vars[v.index()].iter().map(|&c| (1.0, c)).collect()
    };
    for (id, node) in dfg.iter() {
        if !node.op.is_lut_mappable() {
            continue;
        }
        // Eq. 2: at most one cut selected.
        f.model.add_constraint(root_expr(&f, id), Sense::Le, 1.0);
        // Eq. 4: selected-cut inputs are roots.
        for (i, cut) in db.cuts(id).cuts().iter().enumerate() {
            let ci = f.c_vars[id.index()][i];
            for sig in cut.inputs() {
                if dfg.node(sig.node).op.is_lut_mappable() {
                    let e = LinExpr::from(ci) - root_expr(&f, sig.node);
                    f.model.add_constraint(e, Sense::Le, 0.0);
                }
            }
        }
    }
    // Eq. 3 (extended): PO sources and direct-read (black box / output)
    // port producers must be roots.
    for (_, node) in dfg.iter() {
        if node.op.is_lut_mappable() {
            continue;
        }
        for p in &node.ins {
            let u = p.node;
            if dfg.node(u).op.is_lut_mappable() {
                f.model.add_constraint(root_expr(&f, u), Sense::Eq, 1.0);
            }
        }
    }

    // ---- Eq. 7: dependences (with producer latency) ------------------------
    for (id, node) in dfg.iter() {
        if !schedulable(&node.op) {
            continue;
        }
        for p in &node.ins {
            let u = p.node;
            let un = dfg.node(u);
            if matches!(un.op, Op::Input | Op::Const(_)) {
                continue; // ready at cycle 0: trivially satisfied
            }
            let lat = target.op_latency(&un.op, un.width);
            let e = s_expr(&f, u) - s_expr(&f, id) + f64::from(lat);
            f.model.add_constraint(e, Sense::Le, f64::from(ii * p.dist));
        }
    }

    // ---- Eqs. 8–9: cycle time ----------------------------------------------
    // Eq. 8 lives in the L bounds. Eq. 9: for every cut pair (w, i) and
    // signal u in the cut:
    //   T·(S_u + lat_u − S_w − II·dist) + L_u + d_u·c_{w,i} − L_w ≤ 0
    for (w, node) in dfg.iter() {
        if !node.op.is_lut_mappable() {
            continue;
        }
        let lw = f.l_vars[w.index()].expect("LUT ops have L");
        for (i, cut) in db.cuts(w).cuts().iter().enumerate() {
            let ci = f.c_vars[w.index()][i];
            for sig in cut.inputs() {
                let u = sig.node;
                let un = dfg.node(u);
                if matches!(un.op, Op::Input | Op::Const(_)) {
                    continue; // ready at time 0 of cycle 0
                }
                let lat = target.op_latency(&un.op, un.width);
                let mut e = (s_expr(&f, u) - s_expr(&f, w) + f64::from(lat)
                    - f64::from(ii * sig.dist))
                    * t_cp;
                if let Some(lu) = f.l_vars[u.index()] {
                    e.add_term(1.0, lu);
                }
                e.add_term(local_delay(target, &un.op, un.width), ci);
                e.add_term(-1.0, lw);
                f.model.add_constraint(e, Sense::Le, 0.0);
            }
        }
    }
    // Direct readers (black boxes; outputs capture at end of cycle).
    for (w, node) in dfg.iter() {
        if node.op.is_lut_mappable() || !schedulable(&node.op) {
            continue;
        }
        for p in &node.ins {
            let u = p.node;
            let un = dfg.node(u);
            if matches!(un.op, Op::Input | Op::Const(_)) {
                continue;
            }
            let lat = target.op_latency(&un.op, un.width);
            let mut e =
                (s_expr(&f, u) - s_expr(&f, w) + f64::from(lat) - f64::from(ii * p.dist)) * t_cp;
            if let Some(lu) = f.l_vars[u.index()] {
                e.add_term(1.0, lu);
            }
            e.add_constant(local_delay(target, &un.op, un.width));
            match f.l_vars[w.index()] {
                Some(lw) => {
                    e.add_term(-1.0, lw);
                }
                None => {
                    // Outputs capture at the end of the cycle.
                    e.add_constant(-t_cp);
                }
            }
            f.model.add_constraint(e, Sense::Le, 0.0);
        }
    }

    // ---- lifetimes (register objective) -------------------------------------
    for (w, node) in dfg.iter() {
        if node.op.is_lut_mappable() {
            for (i, cut) in db.cuts(w).cuts().iter().enumerate() {
                let ci = f.c_vars[w.index()][i];
                for sig in cut.inputs() {
                    let u = sig.node;
                    let un = dfg.node(u);
                    let Some(len_u) = f.len_vars[u.index()] else {
                        continue;
                    };
                    let lat = target.op_latency(&un.op, un.width);
                    // len_u ≥ S_w + II·d − S_u − lat − M(1 − c_{w,i})
                    let mut e = s_expr(&f, w) - s_expr(&f, u) + f64::from(ii * sig.dist)
                        - f64::from(lat)
                        - big_m;
                    e.add_term(big_m, ci);
                    e.add_term(-1.0, len_u);
                    f.model.add_constraint(e, Sense::Le, 0.0);
                }
            }
        } else if schedulable(&node.op) {
            for p in &node.ins {
                let u = p.node;
                let un = dfg.node(u);
                let Some(len_u) = f.len_vars[u.index()] else {
                    continue;
                };
                let lat = target.op_latency(&un.op, un.width);
                let mut e = s_expr(&f, w) - s_expr(&f, u) + f64::from(ii * p.dist) - f64::from(lat);
                e.add_term(-1.0, len_u);
                f.model.add_constraint(e, Sense::Le, 0.0);
            }
        }
    }

    // ---- Eq. 14: modulo resource constraints --------------------------------
    let mut by_resource: std::collections::BTreeMap<pipemap_ir::Resource, Vec<NodeId>> =
        std::collections::BTreeMap::new();
    for (id, node) in dfg.iter() {
        if let Some(r) = node.op.resource() {
            by_resource.entry(r).or_default().push(id);
        }
    }
    for (res, nodes) in by_resource {
        let limit = target.resource_limit(res);
        // Optional DSP-count variable X_r (Eq. 14's usage variable),
        // minimized with weight γ; without γ only the hard limit applies.
        let count_var = if gamma > 0.0 && res == pipemap_ir::Resource::Mult {
            let x = f
                .model
                .add_integer(0.0, limit.map_or(nodes.len() as f64, f64::from), gamma);
            f.x_mult = Some(x);
            Some(x)
        } else {
            None
        };
        if limit.is_none() && count_var.is_none() {
            continue;
        }
        for slot in 0..ii {
            let mut e = LinExpr::new();
            for &v in &nodes {
                for &(t, var) in &f.s_vars[v.index()] {
                    if t % ii == slot {
                        e.add_term(1.0, var);
                    }
                }
            }
            match count_var {
                Some(x) => {
                    e.add_term(-1.0, x);
                    f.model.add_constraint(e, Sense::Le, 0.0);
                }
                None => {
                    let lim = limit.expect("checked above");
                    f.model.add_constraint(e, Sense::Le, f64::from(lim));
                }
            }
        }
        // With a usage variable, the hard limit moves onto its bound.
    }

    f
}

impl Formulation {
    /// Every model variable owned by one DFG node: schedule one-hots,
    /// cut selectors, intra-cycle start, and lifetime. The subgraph
    /// decomposition uses this to free a region's variables while the
    /// complement stays frozen at the incumbent.
    pub fn node_vars(&self, v: NodeId) -> impl Iterator<Item = VarId> + '_ {
        let i = v.index();
        self.s_vars[i]
            .iter()
            .map(|&(_, var)| var)
            .chain(self.c_vars[i].iter().copied())
            .chain(self.l_vars[i])
            .chain(self.len_vars[i])
    }

    /// Objective coefficients for a new `(α, β, γ)` weighting, as
    /// `(variable, coefficient)` pairs. A weight sweep applies these as
    /// objective deltas on a `ResolveContext` instead of rebuilding the
    /// model, which keeps the solved basis warm across sweep points.
    ///
    /// `γ` is only honoured when the model was *built* with a DSP-count
    /// variable (`gamma > 0.0` at build time); re-weighting to `γ = 0`
    /// then just zeroes its coefficient, which is exact.
    pub fn objective_deltas(&self, alpha: f64, beta: f64, gamma: f64) -> Vec<(VarId, f64)> {
        let mut out = Vec::with_capacity(self.alpha_units.len() + self.beta_units.len() + 1);
        out.extend(self.alpha_units.iter().map(|&(v, u)| (v, alpha * u)));
        out.extend(self.beta_units.iter().map(|&(v, u)| (v, beta * u)));
        out.extend(self.x_mult.map(|x| (x, gamma)));
        out
    }

    /// Extract an [`Implementation`] from a solved assignment.
    pub fn extract(&self, dfg: &Dfg, db: &CutDb, values: &[f64]) -> Implementation {
        let mut cycles = vec![0u32; dfg.len()];
        let mut starts = vec![0.0f64; dfg.len()];
        let mut selected = vec![None; dfg.len()];
        for (id, node) in dfg.iter() {
            for &(t, var) in &self.s_vars[id.index()] {
                if values[var.index()] > 0.5 {
                    cycles[id.index()] = t;
                }
            }
            if let Some(l) = self.l_vars[id.index()] {
                starts[id.index()] = values[l.index()].max(0.0);
            }
            if node.op.is_lut_mappable() {
                for (i, &c) in self.c_vars[id.index()].iter().enumerate() {
                    if values[c.index()] > 0.5 {
                        selected[id.index()] = Some(db.cuts(id).cuts()[i].clone());
                    }
                }
            }
        }
        Implementation {
            schedule: Schedule::new(self.ii, cycles, starts),
            cover: Cover::new(selected),
        }
    }

    /// Convert a known-legal implementation (the baseline seed) into a
    /// variable assignment; `None` if it does not fit the model (e.g. a
    /// cycle outside a window or a cut not in the database).
    pub fn seed(
        &self,
        dfg: &Dfg,
        target: &Target,
        db: &CutDb,
        imp: &Implementation,
    ) -> Option<Vec<f64>> {
        let starts = seed_starts(dfg, target, db, self.ii, imp);
        let mut vals = vec![0.0; self.model.num_vars()];
        for (id, node) in dfg.iter() {
            if schedulable(&node.op) {
                let cyc = imp.schedule.cycle(id);
                if cyc >= self.m {
                    return None;
                }
                let mut hit = false;
                for &(t, var) in &self.s_vars[id.index()] {
                    if t == cyc {
                        vals[var.index()] = 1.0;
                        hit = true;
                    }
                }
                if !hit {
                    return None; // outside the window
                }
            }
            if let Some(l) = self.l_vars[id.index()] {
                let (_, ub) = self.model.bounds(l);
                let want = starts[id.index()];
                if want > ub + 1e-6 {
                    return None; // an absorbed chain does not fit Eq. 8
                }
                vals[l.index()] = want.clamp(0.0, ub);
            }
            if node.op.is_lut_mappable() {
                if let Some(cut) = imp.cover.cut(id) {
                    let idx = db.cuts(id).cuts().iter().position(|c| c == cut)?;
                    vals[self.c_vars[id.index()][idx].index()] = 1.0;
                }
            }
        }
        // Lifetimes from the same liveness math the QoR evaluator uses.
        let (avail, last_use) = pipemap_netlist::liveness(dfg, target, imp);
        for (id, _) in dfg.iter() {
            if let Some(len) = self.len_vars[id.index()] {
                let lt = match last_use[id.index()] {
                    Some(last) => f64::from(last.saturating_sub(avail[id.index()])),
                    None => 0.0,
                };
                vals[len.index()] = lt;
            }
        }
        Some(vals)
    }
}

/// Intra-cycle start times consistent with *all* of the model's Eq. 9
/// rows for a concrete implementation: a fixpoint of
///
/// * `L_w ≥ L_u + d_u` for every same-effective-cycle input `u` of `w`'s
///   **selected** cut (and of black-box ports),
/// * `L_w ≥ L_u` for every same-effective-cycle ancestor that appears in
///   any **unselected** cut (propagated transitively through ports).
fn seed_starts(dfg: &Dfg, target: &Target, db: &CutDb, ii: u32, imp: &Implementation) -> Vec<f64> {
    let order = dfg.topo_order().expect("validated graph");
    let mut l = vec![0.0f64; dfg.len()];
    let same_cycle = |u: NodeId, dist: u32, w: NodeId| -> bool {
        let un = dfg.node(u);
        if matches!(un.op, Op::Input | Op::Const(_)) {
            return false;
        }
        let lat = target.op_latency(&un.op, un.width);
        imp.schedule.cycle(u) + lat == imp.schedule.cycle(w) + ii * dist
    };
    // A couple of sweeps so loop-carried same-cycle chains settle.
    for _ in 0..3 {
        let mut changed = false;
        for &w in &order {
            let node = dfg.node(w);
            if matches!(node.op, Op::Input | Op::Const(_)) {
                continue;
            }
            let mut need = 0.0f64;
            // Ordering through direct ports (covers interior ancestors).
            for p in &node.ins {
                if same_cycle(p.node, p.dist, w) {
                    need = need.max(l[p.node.index()]);
                }
            }
            // Delay through the physical inputs of this node's cell.
            let pay = |u: NodeId, dist: u32, need: &mut f64| {
                if same_cycle(u, dist, w) {
                    let un = dfg.node(u);
                    *need = need.max(l[u.index()] + local_delay(target, &un.op, un.width));
                }
            };
            if node.op.is_lut_mappable() {
                if let Some(cut) = imp.cover.cut(w) {
                    for sig in cut.inputs() {
                        pay(sig.node, sig.dist, &mut need);
                    }
                }
            } else {
                for p in &node.ins {
                    pay(p.node, p.dist, &mut need);
                }
            }
            if need > l[w.index()] + 1e-12 {
                l[w.index()] = need;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let _ = db;
    l
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_cuts::CutConfig;
    use pipemap_ir::DfgBuilder;
    use pipemap_milp::SolverOptions;

    fn small() -> Dfg {
        let mut b = DfgBuilder::new("small");
        let s = b.input("s", 2);
        let t = b.input("t", 2);
        let a = b.shr(s, 1);
        let x = b.xor(t, a);
        b.output("o", x);
        b.finish().expect("valid")
    }

    #[test]
    fn model_solves_and_extracts() {
        let g = small();
        let target = Target::fig1();
        let db = CutDb::enumerate(&g, &CutConfig::for_target(&target));
        let f = build(&g, &target, &db, 1, 2, 0.5, 0.5);
        let r = f
            .model
            .solve(&SolverOptions::default())
            .expect("milp solves");
        assert!(r.status.has_solution(), "status {:?}", r.status);
        let imp = f.extract(&g, &db, &r.values);
        pipemap_netlist::verify(&g, &target, &imp).expect("legal");
    }

    #[test]
    fn mapping_aware_model_absorbs_the_shift() {
        let g = small();
        let target = Target::fig1();
        let db = CutDb::enumerate(&g, &CutConfig::for_target(&target));
        let f = build(&g, &target, &db, 1, 2, 0.5, 0.5);
        let r = f.model.solve(&SolverOptions::default()).expect("solves");
        let imp = f.extract(&g, &db, &r.values);
        // Optimal cover: one LUT rooted at the xor absorbing the shift.
        let q = pipemap_netlist::Qor::evaluate(&g, &target, &imp);
        assert_eq!(q.luts, 2, "one 2-bit LUT expected, got {q:?}");
        assert_eq!(q.ffs, 0);
    }

    #[test]
    fn seed_from_baseline_is_feasible() {
        let g = small();
        let target = Target::fig1();
        let db = CutDb::enumerate(&g, &CutConfig::for_target(&target));
        let base = crate::baseline::schedule_baseline(&g, &target, 1, &db).expect("baseline");
        let m = base.implementation.schedule.depth();
        let f = build(&g, &target, &db, base.ii, m, 0.5, 0.5);
        let seed = f
            .seed(&g, &target, &db, &base.implementation)
            .expect("seed maps into the model");
        assert!(
            f.model.check_feasible(&seed, 1e-6).is_none(),
            "seed violates a row"
        );
    }
}
