//! Schedule-window computation: chaining-aware ASAP/ALAP cycle bounds.
//!
//! The MILP restricts each node's one-hot schedule variables to the window
//! `[ASAP_v, ALAP_v]`, which is what keeps the model small enough for an
//! exact solve. To stay **sound for the mapping-aware flow**, the bounds
//! are *optimistic*: ASAP assumes each node completes as early as its best
//! enumerated cut allows (absorbed logic contributes zero delay), ALAP
//! assumes downstream logic absorbs for free. Both are relaxations, so a
//! window can only be wider than necessary, never exclude the optimum that
//! the cut database supports.

use pipemap_cuts::CutDb;
use pipemap_ir::{Dfg, Op, Target};

/// Completion "timestamp": (cycle, ns into that cycle), ordered
/// lexicographically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Stamp {
    pub cycle: u32,
    pub time: f64,
}

impl Stamp {
    const ZERO: Stamp = Stamp {
        cycle: 0,
        time: 0.0,
    };

    fn max(self, other: Stamp) -> Stamp {
        if (other.cycle, other.time) > (self.cycle, self.time) {
            other
        } else {
            self
        }
    }

    fn min(self, other: Stamp) -> Stamp {
        if (other.cycle, other.time) < (self.cycle, self.time) {
            other
        } else {
            self
        }
    }
}

/// Delay local to an op's final cycle (its full delay minus whole cycles).
fn local_delay(target: &Target, op: &Op, width: u32) -> f64 {
    let lat = target.op_latency(op, width);
    (target.op_delay(op, width) - f64::from(lat) * target.t_cp).max(0.0)
}

/// Advance a ready stamp through an operation: returns
/// `(start_cycle, completion_stamp)`.
fn place(target: &Target, op: &Op, width: u32, ready: Stamp) -> (u32, Stamp) {
    let lat = target.op_latency(op, width);
    let local = local_delay(target, op, width);
    if lat > 0 {
        // Multi-cycle ops start at a register boundary.
        let start = if ready.time > 1e-9 {
            ready.cycle + 1
        } else {
            ready.cycle
        };
        (
            start,
            Stamp {
                cycle: start + lat,
                time: local,
            },
        )
    } else if ready.time + local > target.t_cp + 1e-9 {
        (
            ready.cycle + 1,
            Stamp {
                cycle: ready.cycle + 1,
                time: local,
            },
        )
    } else {
        (
            ready.cycle,
            Stamp {
                cycle: ready.cycle,
                time: ready.time + local,
            },
        )
    }
}

/// Optimistic ASAP start cycles: each LUT-mappable node takes the best of
/// its enumerated cuts (absorbed interiors contribute nothing); black
/// boxes pay their characterized delay. Loop-carried edges are relaxed.
pub(crate) fn asap_optimistic(dfg: &Dfg, target: &Target, db: &CutDb) -> Vec<u32> {
    let order = dfg.topo_order().expect("validated graph");
    let mut comp = vec![Stamp::ZERO; dfg.len()];
    let mut start = vec![0u32; dfg.len()];
    for &v in &order {
        let node = dfg.node(v);
        match node.op {
            Op::Input | Op::Const(_) => {
                comp[v.index()] = Stamp::ZERO;
            }
            _ if node.op.is_lut_mappable() => {
                // Min over cuts of (max over cut inputs of their completion).
                let mut best: Option<(u32, Stamp)> = None;
                for cut in db.cuts(v).cuts() {
                    let mut ready = Stamp::ZERO;
                    for sig in cut.inputs() {
                        if sig.dist > 0 {
                            continue; // relaxed: registered value, ready at 0
                        }
                        ready = ready.max(comp[sig.node.index()]);
                    }
                    let placed = place(target, &node.op, node.width, ready);
                    best = Some(match best {
                        None => placed,
                        Some((bs, bc)) => {
                            if (placed.1.cycle, placed.1.time) < (bc.cycle, bc.time) {
                                placed
                            } else {
                                (bs, bc)
                            }
                        }
                    });
                }
                let (s, c) = best.unwrap_or((0, Stamp::ZERO));
                start[v.index()] = s;
                comp[v.index()] = c;
            }
            _ => {
                // Black boxes and outputs read their ports directly.
                let mut ready = Stamp::ZERO;
                for p in &node.ins {
                    if p.dist == 0 {
                        ready = ready.max(comp[p.node.index()]);
                    }
                }
                let (s, c) = place(target, &node.op, node.width, ready);
                start[v.index()] = s;
                comp[v.index()] = c;
            }
        }
    }
    start
}

/// Which nodes *can* be absorbed into a consumer's LUT under `db`: a
/// node is absorbable iff it appears strictly inside some enumerated
/// cut's cone. The MILP's cover constraints only let a node escape root
/// duty through such a cut, so a node absent from every cone is a root
/// in **every** feasible cover and must pay its LUT delay — the ALAP
/// bound may charge it without excluding any model-feasible schedule.
/// Pruned cut databases (priority cuts) make this strictly sharper.
pub(crate) fn absorbable_nodes(dfg: &Dfg, db: &CutDb) -> Vec<bool> {
    let mut absorbable = vec![false; dfg.len()];
    for v in dfg.node_ids() {
        if !dfg.node(v).op.is_lut_mappable() {
            continue;
        }
        for cut in db.cuts(v).cuts() {
            for n in pipemap_cuts::cone_nodes(dfg, v, cut) {
                if n != v {
                    absorbable[n.index()] = true;
                }
            }
        }
    }
    absorbable
}

/// Optimistic ALAP start cycles for a latency bound of `m` cycles
/// (start cycles in `0..m`): downstream LUT logic is assumed absorbable
/// (zero delay) where the cut database offers a cone containing it —
/// forced roots pay their local delay; black boxes pay their real
/// latency. Loop-carried edges relaxed. Nodes later than the bound are
/// clamped to `m - 1`.
pub(crate) fn alap_optimistic(dfg: &Dfg, target: &Target, m: u32, absorbable: &[bool]) -> Vec<u32> {
    let order = dfg.topo_order().expect("validated graph");
    let consumers = dfg.consumers();
    // down[v] = (extra cycles needed at/after v's start, ns needed within
    // v's final cycle), computed over the reverse graph.
    let mut down = vec![Stamp::ZERO; dfg.len()];
    for &v in order.iter().rev() {
        let node = dfg.node(v);
        let lat = target.op_latency(&node.op, node.width);
        let local = if node.op.is_lut_mappable() && absorbable[v.index()] {
            0.0 // optimistically absorbed
        } else {
            local_delay(target, &node.op, node.width)
        };
        // Requirement from each distance-0 consumer.
        let mut need = Stamp {
            cycle: lat,
            time: local,
        };
        for &(w, k) in &consumers[v.index()] {
            if dfg.node(w).ins[k].dist != 0 {
                continue;
            }
            let dw = down[w.index()];
            // v completes (lat, local) into some cycle; w then needs dw.
            let combined = if dw.time + local > target.t_cp + 1e-9 {
                Stamp {
                    cycle: lat + dw.cycle + 1,
                    time: local,
                }
            } else {
                Stamp {
                    cycle: lat + dw.cycle,
                    time: dw.time + local,
                }
            };
            need = need.max(combined);
        }
        down[v.index()] = need;
    }
    dfg.node_ids()
        .map(|v| (m - 1).saturating_sub(down[v.index()].cycle.min(m - 1)))
        .collect()
}

/// Minimum over the consumers graph — helper for tests.
#[allow(dead_code)]
pub(crate) fn stamp_min(a: Stamp, b: Stamp) -> Stamp {
    a.min(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_cuts::CutConfig;
    use pipemap_ir::DfgBuilder;

    #[test]
    fn asap_with_mapping_beats_additive() {
        // A chain of 9 xors: additively 9 * 1.37 = 12.3 ns > 10 ns -> the
        // chain needs 2 cycles; with 4-LUT mapping it collapses into 3-4
        // LUT levels -> 1 cycle.
        let mut b = DfgBuilder::new("chain9");
        let x = b.input("x", 1);
        let y = b.input("y", 1);
        let mut cur = b.xor(x, y);
        for _ in 0..8 {
            cur = b.xor(cur, x);
        }
        b.output("o", cur);
        let g = b.finish().expect("valid");
        let t = Target::default();

        let db_map = CutDb::enumerate(&g, &CutConfig::for_target(&t));
        let asap_map = asap_optimistic(&g, &t, &db_map);

        let db_triv = CutDb::enumerate(&g, &CutConfig::trivial_only(&t));
        let asap_triv = asap_optimistic(&g, &t, &db_triv);

        assert!(asap_map[cur.index()] < asap_triv[cur.index()]);
        assert_eq!(asap_map[cur.index()], 0);
    }

    #[test]
    fn asap_respects_black_box_latency() {
        let mut b = DfgBuilder::new("bb");
        let x = b.input("x", 8);
        let y = b.input("y", 8);
        let p = b.mul(x, y);
        let n = b.not(p);
        b.output("o", n);
        let g = b.finish().expect("valid");
        let mut t = Target::default();
        t.delays.mul = 25.0; // latency 2 at 10 ns
        let db = CutDb::enumerate(&g, &CutConfig::for_target(&t));
        let asap = asap_optimistic(&g, &t, &db);
        // The multiplier completes in cycle 2 with 5 ns remainder; the NOT
        // chains in cycle 2.
        assert_eq!(asap[p.index()], 0);
        assert_eq!(asap[n.index()], 2);
    }

    #[test]
    fn alap_leaves_room_for_downstream_black_boxes() {
        let mut b = DfgBuilder::new("bb2");
        let x = b.input("x", 8);
        let n = b.not(x);
        let p = b.mul(n, x);
        let o = b.output("o", p);
        let g = b.finish().expect("valid");
        let mut t = Target::default();
        t.delays.mul = 15.0; // latency 1
        let m = 4;
        let db = CutDb::enumerate(&g, &CutConfig::for_target(&t));
        let alap = alap_optimistic(&g, &t, m, &absorbable_nodes(&g, &db));
        // Output needs p done; p needs 1 extra cycle; n feeds p.
        assert_eq!(alap[o.index()], 3);
        assert!(alap[p.index()] <= 2);
        assert!(alap[n.index()] <= alap[p.index()]);
    }

    #[test]
    fn windows_contain_asap_at_matching_depth() {
        let mut b = DfgBuilder::new("w");
        let x = b.input("x", 4);
        let y = b.input("y", 4);
        let s = b.add(x, y);
        let c = b.and(s, x);
        b.output("o", c);
        let g = b.finish().expect("valid");
        let t = Target::default();
        let db = CutDb::enumerate(&g, &CutConfig::for_target(&t));
        let asap = asap_optimistic(&g, &t, &db);
        let alap = alap_optimistic(&g, &t, 2, &absorbable_nodes(&g, &db));
        for v in g.node_ids() {
            assert!(
                asap[v.index()] <= alap[v.index()],
                "window empty for {v}: [{}, {}]",
                asap[v.index()],
                alap[v.index()]
            );
        }
    }
}
