//! Feedback-guided subgraph decomposition for the mapping MILP.
//!
//! The full mapping-aware model couples every node's schedule and cover
//! variables through the Eq. 4/9 rows, so the branch-and-bound tree on
//! the larger benchmarks spends most of its budget far from good
//! incumbents. This module attacks the *primal* side of that gap with a
//! large-neighborhood scheme over cone-bounded subgraphs:
//!
//! 1. **Carve.** The DFG is split into regions seeded from the maximal
//!    fanout-free cones of [`pipemap_cuts::analysis::MffcDb`]: each
//!    region is a subtree of the post-dominator tree (a cone whose
//!    interior is consumed only through its root), grown breadth-first
//!    and capped at [`DecomposeConfig::max_region`] nodes. Cones are the
//!    natural unit here because re-covering a cone never forces
//!    duplication elsewhere — exactly the property that makes a region
//!    solvable in isolation.
//! 2. **Feedback.** Regions are ordered by the *LP fractionality* of
//!    their integer variables at the root relaxation: a region whose
//!    one-hot schedule and cut selectors are already integral has
//!    nothing to gain, while a highly fractional region is where the
//!    relaxation disagrees with every integer point. The most fractional
//!    regions are re-optimized first.
//! 3. **Solve & stitch.** For each region a sub-MILP is formed by
//!    freezing every variable *outside* the region at the incumbent
//!    (via [`pipemap_milp::Model::set_bounds`]) and solving the rest
//!    under a small node/time budget. Because the frozen complement
//!    keeps every coupling row intact, any solution of the sub-MILP is
//!    boundary-consistent by construction; an improving one is verified
//!    against the *original* model ([`pipemap_milp::Model::check_feasible`])
//!    and stitched in as the new incumbent.
//!
//! The refined incumbent seeds the full solve as its starting primal
//! bound. Determinism: regions, their order, and every sub-solve are
//! deterministic (the solver is deterministic in its thread count), so
//! the jobs-invariance contract of the flows is preserved.

use std::time::{Duration, Instant};

use pipemap_cuts::analysis::MffcDb;
use pipemap_ir::{Dfg, NodeId};
use pipemap_milp::{SolverOptions, VarKind};
use pipemap_obs as obs;

use crate::formulation::Formulation;

/// Knobs of the decomposition pass.
#[derive(Debug, Clone)]
pub(crate) struct DecomposeConfig {
    /// Maximum nodes per region (cone subtree truncated breadth-first).
    pub max_region: usize,
    /// Minimum LUT-mappable nodes for a region to be worth a sub-solve.
    pub min_region: usize,
    /// Total wall-clock budget across all sub-solves.
    pub time_budget: Duration,
    /// Branch-and-bound node cap per sub-solve (the deterministic
    /// limiter; the time slice is a safety net).
    pub node_limit: usize,
    /// Worker threads per sub-solve (sub-solves themselves run
    /// sequentially).
    pub jobs: usize,
    /// Give up after this many consecutive sub-solves without a stitch:
    /// when the neighborhoods are not improving, the remaining budget
    /// is worth more to the main branch-and-bound tree.
    pub max_consecutive_failures: usize,
    /// Solve region/group sub-MILPs through one shared
    /// [`pipemap_milp::ResolveContext`] (freeze/relax edits applied as
    /// bound/objective deltas, warm-started from the previous sub-solve's
    /// basis) instead of re-cloning and cold-solving the full model per
    /// sub-problem. Off = the historical clone-per-subproblem path.
    pub incremental: bool,
}

impl Default for DecomposeConfig {
    fn default() -> Self {
        DecomposeConfig {
            max_region: 40,
            min_region: 2,
            time_budget: Duration::from_secs(15),
            node_limit: 2000,
            jobs: 1,
            max_consecutive_failures: 5,
            incremental: true,
        }
    }
}

/// What the decomposition produced.
#[derive(Debug, Clone)]
pub(crate) struct DecomposeOutcome {
    /// The refined incumbent (the input seed when nothing improved).
    pub values: Vec<f64>,
    /// Objective of [`DecomposeOutcome::values`] on the full model.
    pub objective: f64,
    /// Region sub-MILPs solved.
    pub subproblems_solved: usize,
    /// Improving region incumbents stitched into the seed.
    pub stitched_incumbents: usize,
    /// Reuse counters of the shared re-solve context (`None` on the
    /// clone-per-subproblem path).
    pub resolve_stats: Option<pipemap_milp::ResolveStats>,
}

/// Carve the DFG into cone-bounded regions: subtrees of the
/// post-dominator tree seeded at the largest uncovered MFFC roots.
/// Regions may overlap the frontier of earlier ones but each node seeds
/// at most one region, so the count is linear in the graph.
fn carve_regions(dfg: &Dfg, cfg: &DecomposeConfig) -> Vec<Vec<NodeId>> {
    let mffc = MffcDb::compute(dfg);
    let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); dfg.len()];
    for id in dfg.node_ids() {
        if let Some(p) = mffc.pdom().ipdom(id) {
            children[p.index()].push(id);
        }
    }
    // Largest cones first so deep shared logic lands in one region
    // instead of fragmenting; ties break toward lower node ids.
    let mut roots: Vec<NodeId> = dfg
        .iter()
        .filter(|(_, n)| n.op.is_lut_mappable())
        .map(|(id, _)| id)
        .collect();
    roots.sort_by_key(|&r| (std::cmp::Reverse(mffc.size(r)), r.index()));

    let mut covered = vec![false; dfg.len()];
    let mut out: Vec<Vec<NodeId>> = Vec::new();
    for r in roots {
        if covered[r.index()] {
            continue;
        }
        // Breadth-first down the post-dominator subtree of `r`.
        let mut members = vec![r];
        let mut qi = 0;
        while qi < members.len() && members.len() < cfg.max_region {
            let u = members[qi];
            qi += 1;
            for &c in &children[u.index()] {
                if members.len() >= cfg.max_region {
                    break;
                }
                members.push(c);
            }
        }
        let mappable = members
            .iter()
            .filter(|&&u| dfg.node(u).op.is_lut_mappable())
            .count();
        if mappable < cfg.min_region {
            continue;
        }
        for &u in &members {
            covered[u.index()] = true;
        }
        out.push(members);
    }
    out
}

/// Sum of integrality violations of a region's integer variables at the
/// LP relaxation point — the feedback signal ordering the sub-solves.
fn fractionality(f: &Formulation, region: &[NodeId], relax: &[f64]) -> f64 {
    let mut s = 0.0f64;
    for &u in region {
        for var in f.node_vars(u) {
            if f.model.var_kind(var) != VarKind::Integer {
                continue;
            }
            let x = relax[var.index()];
            let frac = x - x.floor();
            s += frac.min(1.0 - frac);
        }
    }
    s
}

/// Snap near-integral values of integer variables so a frozen complement
/// never presents fractional bounds to a sub-solve.
fn snap_integers(f: &Formulation, values: &mut [f64]) {
    for (j, val) in values.iter_mut().enumerate().take(f.model.num_vars()) {
        let v = pipemap_milp::VarId::from_index(j);
        if f.model.var_kind(v) == VarKind::Integer {
            let r = val.round();
            if (*val - r).abs() <= 1e-6 {
                *val = r;
            }
        }
    }
}

/// A certified *dual* use of the same region structure: partition the
/// columns into the carved regions (plus one group for everything not in
/// a region) and minimize each group's share of the linear objective
/// over the **full** row set, with only that group's variables integer.
/// Each sub-solve is a relaxation of the true problem with a partial
/// objective, so for the true optimum `x*`:
///
/// ```text
///   c·x*  =  Σ_G c_G·x*  ≥  Σ_G min { c_G·x : rows, G integer }
/// ```
///
/// and the sum of the groups' *dual bounds* (valid even when a sub-solve
/// hits its node or time limit) is a valid lower bound on the full MILP.
/// Unlike the root LP bound, each term sees the integrality of its own
/// region, so the sum captures per-region integrality gaps that the LP
/// misses entirely.
///
/// Returns `(bound, groups_solved)`, or `None` when no finite bound
/// could be established (a group with an unbounded relaxation).
pub(crate) fn partition_bound(
    dfg: &Dfg,
    f: &Formulation,
    cfg: &DecomposeConfig,
) -> Option<(f64, usize)> {
    let _span = obs::span("partition-bound");
    let n = f.model.num_vars();
    let regions = carve_regions(dfg, cfg);
    // group[j] = region index, or regions.len() for the complement.
    let rest = regions.len();
    let mut group = vec![rest; n];
    for (gi, region) in regions.iter().enumerate() {
        for &u in region {
            for var in f.node_vars(u) {
                group[var.index()] = gi;
            }
        }
    }

    // The trivial box bound of one group: min of `c_G·x` over the bounds
    // alone. Valid fallback for groups the budget never reaches; `None`
    // when a group member has a nonzero coefficient on an unbounded side.
    let box_bound = |gi: usize| -> Option<f64> {
        let mut s = 0.0f64;
        for (j, &g) in group.iter().enumerate() {
            if g != gi {
                continue;
            }
            let v = pipemap_milp::VarId::from_index(j);
            let c = f.model.objective_coeff(v);
            if c == 0.0 {
                continue;
            }
            let (lb, ub) = f.model.bounds(v);
            let t = if c > 0.0 { c * lb } else { c * ub };
            if !t.is_finite() {
                return None;
            }
            s += t;
        }
        Some(s)
    };

    // Solve the heaviest groups first: a group's lift over its box bound
    // comes from its objective-weighted integer columns, and the
    // per-group slice is largest while the budget is still full, so the
    // groups with the most to gain should spend it.
    let mut weight = vec![0usize; rest + 1];
    for (j, &g) in group.iter().enumerate() {
        if f.model.objective_coeff(pipemap_milp::VarId::from_index(j)) != 0.0 {
            weight[g] += 1;
        }
    }
    let mut order: Vec<usize> = (0..=rest).collect();
    order.sort_by_key(|&gi| std::cmp::Reverse(weight[gi]));

    let start = Instant::now();
    let mut total = 0.0f64;
    let mut solved = 0usize;
    // One shared re-solve context: each group's "partial objective +
    // partial integrality" model is the base model plus objective and
    // kind deltas, so consecutive groups warm-start from the previous
    // group's root basis instead of cold-solving a fresh clone.
    let mut cx = cfg
        .incremental
        .then(|| pipemap_milp::ResolveContext::new(f.model.clone()));
    for (k, &gi) in order.iter().enumerate() {
        let remaining = cfg.time_budget.saturating_sub(start.elapsed());
        // A group with no objective-weighted column contributes exactly
        // its box bound (zero): don't spend a solver call on it.
        if remaining.is_zero() || weight[gi] == 0 {
            total += box_bound(gi)?;
            continue;
        }
        let groups_left = (rest + 1 - k) as u32;
        let slice = (remaining / groups_left).max(Duration::from_millis(100));
        // Unlike the refinement sub-solves, the node cap here is a
        // runaway backstop, not the convergence mechanism: the bound
        // should use whatever its time slice allows.
        let sub_opts = SolverOptions {
            time_limit: slice,
            node_limit: cfg.node_limit.saturating_mul(25),
            jobs: cfg.jobs.max(1),
            probing: false,
            cuts: false,
            symmetry: false,
            ..SolverOptions::default()
        };
        let sub_result = match cx.as_mut() {
            Some(cx) => {
                cx.restore_objective();
                cx.restore_kinds();
                for (j, &g) in group.iter().enumerate() {
                    if g != gi {
                        let v = pipemap_milp::VarId::from_index(j);
                        cx.set_objective_coeff(v, 0.0);
                        cx.relax_integrality(v);
                    }
                }
                cx.solve(&sub_opts)
            }
            None => {
                let mut sub = f.model.clone();
                for (j, &g) in group.iter().enumerate() {
                    if g != gi {
                        let v = pipemap_milp::VarId::from_index(j);
                        sub.set_objective_coeff(v, 0.0);
                        sub.relax_integrality(v);
                    }
                }
                sub.solve(&sub_opts)
            }
        };
        match sub_result {
            Ok(r) if r.best_bound.is_finite() => {
                solved += 1;
                // Never below the box bound the group is entitled to.
                total += box_bound(gi).map_or(r.best_bound, |b| r.best_bound.max(b));
            }
            _ => total += box_bound(gi)?,
        }
    }
    if obs::enabled() {
        obs::instant_with(
            "partition-bound",
            vec![("bound", total.into()), ("groups_solved", solved.into())],
        );
    }
    Some((total, solved))
}

/// Refine a feasible seed by re-optimizing one region at a time (see the
/// module docs). Returns the best incumbent found — the input seed when
/// no region improved.
pub(crate) fn refine_incumbent(
    dfg: &Dfg,
    f: &Formulation,
    seed: Vec<f64>,
    relax: Option<&[f64]>,
    cfg: &DecomposeConfig,
) -> DecomposeOutcome {
    let _span = obs::span("decompose");
    let mut incumbent = seed;
    snap_integers(f, &mut incumbent);
    let mut best = f.model.objective_value(&incumbent);
    let mut out = DecomposeOutcome {
        values: Vec::new(),
        objective: best,
        subproblems_solved: 0,
        stitched_incumbents: 0,
        resolve_stats: None,
    };

    let mut regions = carve_regions(dfg, cfg);
    if let Some(x) = relax {
        // Most fractional first; region order index breaks ties so the
        // schedule is deterministic.
        let mut scored: Vec<(f64, usize)> = regions
            .iter()
            .enumerate()
            .map(|(i, r)| (fractionality(f, r, x), i))
            .collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        let reordered: Vec<Vec<NodeId>> = scored
            .into_iter()
            .map(|(_, i)| std::mem::take(&mut regions[i]))
            .collect();
        regions = reordered;
    }

    // Round-robin over the regions until a full pass lands no stitch or
    // the budget runs dry: an improvement in one region can re-open
    // slack in a neighbour through the coupling rows, so a single pass
    // routinely leaves improvements on the table. Region order is fixed
    // across rounds, so the schedule stays deterministic.
    let start = Instant::now();
    let mut consecutive_failures = 0usize;
    // One shared re-solve context across every region and round: the
    // frozen-complement sub-MILP is the base model plus bound deltas
    // (freeze = fix at the incumbent), rolled back and re-applied per
    // region, so each sub-solve warm-starts from its predecessor.
    let mut cx = cfg
        .incremental
        .then(|| pipemap_milp::ResolveContext::new(f.model.clone()));
    'rounds: loop {
        let mut improved_this_round = false;
        for region in &regions {
            let elapsed = start.elapsed();
            if elapsed >= cfg.time_budget || consecutive_failures >= cfg.max_consecutive_failures {
                break 'rounds;
            }
            // Each sub-solve gets at most a quarter of the budget so several
            // regions are always visited, and never more than what is left.
            let slice = (cfg.time_budget / 4)
                .min(cfg.time_budget - elapsed)
                .max(Duration::from_millis(100));

            let mut free = vec![false; f.model.num_vars()];
            for &u in region {
                for var in f.node_vars(u) {
                    free[var.index()] = true;
                }
            }
            let sub_opts = SolverOptions {
                time_limit: slice,
                node_limit: cfg.node_limit,
                initial_solution: Some(incumbent.clone()),
                jobs: cfg.jobs.max(1),
                // Region models are small; the structural passes cost more
                // than they save here.
                probing: false,
                cuts: false,
                symmetry: false,
                ..SolverOptions::default()
            };
            let sub_result = match cx.as_mut() {
                Some(cx) => {
                    cx.restore_bounds();
                    for (j, &is_free) in free.iter().enumerate() {
                        if !is_free {
                            let x = incumbent[j];
                            cx.set_bounds(pipemap_milp::VarId::from_index(j), x, x);
                        }
                    }
                    cx.solve(&sub_opts)
                }
                None => {
                    let mut sub = f.model.clone();
                    for (j, &is_free) in free.iter().enumerate() {
                        if !is_free {
                            let x = incumbent[j];
                            sub.set_bounds(pipemap_milp::VarId::from_index(j), x, x);
                        }
                    }
                    sub.solve(&sub_opts)
                }
            };
            let Ok(r) = sub_result else {
                continue;
            };
            out.subproblems_solved += 1;
            if !r.status.has_solution() || r.objective >= best - 1e-9 {
                consecutive_failures += 1;
                continue;
            }
            // Stitch: the frozen complement kept every coupling row, so the
            // improving region solution extends the incumbent — but only
            // trust it after a full-model feasibility check.
            let mut cand = r.values;
            snap_integers(f, &mut cand);
            if f.model.check_feasible(&cand, 1e-6).is_some() {
                consecutive_failures += 1;
                continue;
            }
            best = f.model.objective_value(&cand);
            incumbent = cand;
            out.stitched_incumbents += 1;
            improved_this_round = true;
            consecutive_failures = 0;
            if obs::enabled() {
                obs::instant_with(
                    "decompose-stitch",
                    vec![("objective", best.into()), ("region", region.len().into())],
                );
            }
        }
        if !improved_this_round {
            break;
        }
    }

    out.values = incumbent;
    out.objective = best;
    out.resolve_stats = cx.map(|c| c.stats());
    if obs::enabled() {
        obs::instant_with(
            "decompose-done",
            vec![
                ("subproblems", out.subproblems_solved.into()),
                ("stitched", out.stitched_incumbents.into()),
            ],
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formulation;
    use pipemap_cuts::{CutConfig, CutDb};
    use pipemap_ir::{DfgBuilder, Target};

    /// Two independent cones wide enough to give the carver something
    /// to split: each output's logic is private to its cone.
    fn two_cones() -> Dfg {
        let mut b = DfgBuilder::new("cones");
        let x = b.input("x", 2);
        let y = b.input("y", 2);
        let a1 = b.shr(x, 1);
        let a2 = b.xor(a1, y);
        let a3 = b.not(a2);
        b.output("o1", a3);
        let b1 = b.and(x, y);
        let b2 = b.xor(b1, x);
        let b3 = b.not(b2);
        b.output("o2", b3);
        b.finish().expect("valid")
    }

    #[test]
    fn carver_builds_disjoint_cone_regions() {
        let g = two_cones();
        let cfg = DecomposeConfig::default();
        let regions = carve_regions(&g, &cfg);
        assert!(!regions.is_empty());
        // Every region's seed (first member) is LUT-mappable, and no
        // node seeds two regions.
        let mut seen = std::collections::BTreeSet::new();
        for r in &regions {
            assert!(g.node(r[0]).op.is_lut_mappable());
            for &u in r {
                seen.insert(u.index());
            }
        }
        assert!(seen.len() >= 2);
    }

    #[test]
    fn refinement_never_worsens_the_seed() {
        let g = two_cones();
        let target = Target::fig1();
        let db = CutDb::enumerate(&g, &CutConfig::for_target(&target));
        let base = crate::baseline::schedule_baseline(&g, &target, 1, &db).expect("baseline");
        let m = base.implementation.schedule.depth();
        let f = formulation::build(&g, &target, &db, base.ii, m, 0.5, 0.5);
        let seed = f
            .seed(&g, &target, &db, &base.implementation)
            .expect("seed fits");
        let seed_obj = f.model.objective_value(&seed);

        let cfg = DecomposeConfig {
            time_budget: Duration::from_secs(5),
            jobs: 1,
            ..DecomposeConfig::default()
        };
        let relax = pipemap_milp::solve_relaxation(&f.model, Duration::from_secs(5));
        let out = refine_incumbent(
            &g,
            &f,
            seed,
            relax.as_ref().map(|(_, x)| x.as_slice()),
            &cfg,
        );
        assert!(out.objective <= seed_obj + 1e-9, "refinement worsened");
        assert!(
            f.model.check_feasible(&out.values, 1e-6).is_none(),
            "refined incumbent infeasible"
        );
        assert!(out.subproblems_solved >= out.stitched_incumbents);
        // Default config routes sub-solves through the shared context.
        let rs = out.resolve_stats.expect("incremental stats");
        assert_eq!(rs.solves, out.subproblems_solved);
    }

    #[test]
    fn clone_path_refinement_still_works() {
        let g = two_cones();
        let target = Target::fig1();
        let db = CutDb::enumerate(&g, &CutConfig::for_target(&target));
        let base = crate::baseline::schedule_baseline(&g, &target, 1, &db).expect("baseline");
        let m = base.implementation.schedule.depth();
        let f = formulation::build(&g, &target, &db, base.ii, m, 0.5, 0.5);
        let seed = f
            .seed(&g, &target, &db, &base.implementation)
            .expect("seed fits");
        let seed_obj = f.model.objective_value(&seed);
        let cfg = DecomposeConfig {
            time_budget: Duration::from_secs(5),
            jobs: 1,
            incremental: false,
            ..DecomposeConfig::default()
        };
        let out = refine_incumbent(&g, &f, seed, None, &cfg);
        assert!(out.objective <= seed_obj + 1e-9, "refinement worsened");
        assert!(
            f.model.check_feasible(&out.values, 1e-6).is_none(),
            "refined incumbent infeasible"
        );
        assert!(out.resolve_stats.is_none());
    }

    #[test]
    fn partition_bound_never_exceeds_the_optimum() {
        let g = two_cones();
        let target = Target::fig1();
        let db = CutDb::enumerate(&g, &CutConfig::for_target(&target));
        let base = crate::baseline::schedule_baseline(&g, &target, 1, &db).expect("baseline");
        let m = base.implementation.schedule.depth();
        let f = formulation::build(&g, &target, &db, base.ii, m, 0.5, 0.5);

        let opts = pipemap_milp::SolverOptions {
            time_limit: Duration::from_secs(30),
            jobs: 1,
            ..pipemap_milp::SolverOptions::default()
        };
        let full = f.model.solve(&opts).expect("full solve");
        assert_eq!(full.status, pipemap_milp::Status::Optimal);

        let cfg = DecomposeConfig {
            time_budget: Duration::from_secs(10),
            jobs: 1,
            ..DecomposeConfig::default()
        };
        let (bound, solved) = partition_bound(&g, &f, &cfg).expect("finite bound");
        assert!(solved > 0);
        assert!(
            bound <= full.objective + 1e-6,
            "partition bound {bound} exceeds optimum {}",
            full.objective
        );
    }
}
