//! The three evaluation flows of the paper's Table 1: the heuristic HLS
//! tool, the mapping-agnostic exact MILP (MILP-base), and the full
//! mapping-aware MILP (MILP-map).

use std::time::{Duration, Instant};

use pipemap_analyze::Analysis;
use pipemap_cuts::{
    priority_cuts, Cut, CutConfig, CutDb, PruneConfig, PruneStats as CutPruneStats,
};
use pipemap_ir::{Dfg, Target};
use pipemap_milp::{SolverOptions, SolverStats, Status};
use pipemap_netlist::{Cover, Implementation, Qor};
use pipemap_obs as obs;

use crate::baseline::{schedule_baseline, BaselineResult};
use crate::error::CoreError;
use crate::formulation;

/// Which scheduling flow to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Flow {
    /// Heuristic additive-delay scheduler + register-bounded mapping (the
    /// commercial-tool stand-in).
    HlsTool,
    /// Exact MILP restricted to trivial (unit) cuts — isolates "exact vs
    /// heuristic" from mapping awareness.
    MilpBase,
    /// The full mapping-aware MILP.
    MilpMap,
    /// The scalable mapping-aware *list-scheduling* heuristic the paper
    /// lists as future work (§5): cut-aware delays during list
    /// scheduling, then greedy area mapping. No MILP involved.
    MappedHeuristic,
}

impl Flow {
    /// The paper's three Table 1 flows, in row order.
    pub const ALL: [Flow; 3] = [Flow::HlsTool, Flow::MilpBase, Flow::MilpMap];

    /// All flows including the future-work heuristic.
    pub const EXTENDED: [Flow; 4] = [
        Flow::HlsTool,
        Flow::MappedHeuristic,
        Flow::MilpBase,
        Flow::MilpMap,
    ];

    /// The paper's row label.
    pub fn label(self) -> &'static str {
        match self {
            Flow::HlsTool => "HLS Tool",
            Flow::MilpBase => "MILP-base",
            Flow::MilpMap => "MILP-map",
            Flow::MappedHeuristic => "Map-heur",
        }
    }
}

impl std::fmt::Display for Flow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Knobs shared by all flows.
#[derive(Debug, Clone)]
pub struct FlowOptions {
    /// Target initiation interval (paper: 1); bumped if infeasible.
    pub ii: u32,
    /// LUT-term weight α of Eq. 15 (paper: 0.5).
    pub alpha: f64,
    /// Register-term weight β of Eq. 15 (paper: 0.5).
    pub beta: f64,
    /// Optional DSP-count weight γ — the resource-objective extension the
    /// paper's §3.2 invites. 0 (default) disables the term.
    pub gamma: f64,
    /// Cuts kept per node during enumeration.
    pub max_cuts: usize,
    /// Largest cone size during enumeration.
    pub max_cone: u32,
    /// Run the certified priority-cut analysis before the mapping-aware
    /// MILP (opt-in via `--priority-cuts`): enumerate a raw cut pool,
    /// prune dominated and provably-dead cuts with machine-checkable
    /// certificates, rank the survivors by area/edge flow, and keep at
    /// most [`FlowOptions::max_cuts_per_root`] cuts per node. Certified
    /// drops never move the optimum; the ranked truncation is a
    /// heuristic and can trade mapping quality for a much smaller MILP,
    /// which is why it is off by default.
    pub priority_cuts: bool,
    /// Cuts kept per root by the priority ranking (unit cut included).
    /// The effective cap is `min(max_cuts, max_cuts_per_root)`.
    pub max_cuts_per_root: usize,
    /// Let the plain enumerator (used when [`FlowOptions::priority_cuts`]
    /// is off) drop subset-dominated cuts as it merges (on by default).
    /// Turning it off feeds the raw K-feasible pool to the model — the
    /// unpruned comparator the priority-cut sweep tests solve against.
    pub filter_dominated: bool,
    /// MILP wall-clock budget (paper: 60 min; scaled down here).
    pub time_limit: Duration,
    /// Extra latency slack on top of the baseline depth for the MILP's
    /// schedule windows.
    pub extra_latency: u32,
    /// Seed the MILP with the baseline solution as the initial incumbent.
    pub seed_with_baseline: bool,
    /// Run the `pipemap-analyze` simplification pre-pass before the
    /// mapping-aware MILP flow (on by default). The rewritten graph is
    /// audited by replaying seeded vectors against the original before it
    /// is trusted; on any doubt the flow falls back to the original graph.
    pub analyze: bool,
    /// Worker threads for the MILP tree search *and* for running the
    /// flows of [`run_all_flows`] concurrently. The solver's determinism
    /// contract makes this a pure throughput knob: results are identical
    /// for every value.
    pub jobs: usize,
    /// Run the MILP presolve pass (on by default; off reproduces the
    /// cold-solver baseline for benchmarking).
    pub presolve: bool,
    /// Warm-start child LPs with the dual simplex (on by default; off
    /// reproduces the cold-solver baseline for benchmarking).
    pub warm_start: bool,
    /// Probe binary variables before the search, harvesting certified
    /// fixings and implications (on by default).
    pub probing: bool,
    /// Separate certified clique/cover cuts at the root (on by default).
    pub cuts: bool,
    /// Detect symmetric binary columns and apply orbital fixing during
    /// the search (on by default).
    pub symmetry: bool,
    /// Separate rank-1 Gomory mixed-integer cuts from the root simplex
    /// tableau, each shipped with a machine-checkable derivation
    /// certificate (audited by `pipemap-verify`'s `P07xx` pass). Off by
    /// default; opt in via `--gomory-cuts`.
    pub gomory_cuts: bool,
    /// Refine the MILP seed with the feedback-guided subgraph
    /// decomposition before the full solve: carve MFFC-bounded regions,
    /// re-optimize the most LP-fractional ones as frozen-complement
    /// sub-MILPs, and stitch improving incumbents (see
    /// `crate::decompose`). Off by default; opt in via `--decompose`.
    pub decompose: bool,
    /// Route the decomposition's sub-MILPs through one shared
    /// [`pipemap_milp::ResolveContext`]: freeze/relax edits become
    /// bound/objective deltas and each sub-solve warm-starts from the
    /// previous one's basis and LU factors (on by default; off
    /// reproduces the clone-and-cold-solve baseline via `--resolve off`).
    pub resolve: bool,
}

impl Default for FlowOptions {
    fn default() -> Self {
        FlowOptions {
            ii: 1,
            alpha: 0.5,
            beta: 0.5,
            gamma: 0.0,
            max_cuts: 8,
            max_cone: 24,
            priority_cuts: false,
            max_cuts_per_root: 4,
            filter_dominated: true,
            time_limit: Duration::from_secs(60),
            extra_latency: 0,
            seed_with_baseline: true,
            analyze: true,
            jobs: 1,
            presolve: true,
            warm_start: true,
            probing: true,
            cuts: true,
            symmetry: true,
            gomory_cuts: false,
            decompose: false,
            resolve: true,
        }
    }
}

impl FlowOptions {
    fn cut_config(&self, target: &Target) -> CutConfig {
        CutConfig {
            k: target.k,
            max_cuts: self.max_cuts,
            max_cone: self.max_cone,
            filter_dominated: self.filter_dominated,
            ..CutConfig::default()
        }
    }

    fn prune_config(&self, live_bits: Option<Vec<u64>>) -> PruneConfig {
        PruneConfig {
            max_cuts_per_root: self.max_cuts_per_root.min(self.max_cuts).max(1),
            raw_cuts: self.max_cuts.saturating_mul(2).clamp(8, 32),
            live_bits,
        }
    }
}

/// Solver-side statistics of a MILP flow (Table 2's columns).
#[derive(Debug, Clone)]
pub struct MilpStats {
    /// Final solver status.
    pub status: Status,
    /// Incumbent objective.
    pub objective: f64,
    /// Proven lower bound.
    pub best_bound: f64,
    /// Wall-clock spent in the solver.
    pub solve_time: Duration,
    /// Branch-and-bound nodes.
    pub nodes: usize,
    /// Simplex iterations.
    pub lp_iterations: usize,
    /// Model size: variables.
    pub variables: usize,
    /// Model size: constraint rows.
    pub constraints: usize,
    /// Total enumerated cuts (drives model size; Table 2 discussion).
    pub total_cuts: usize,
    /// Raw cuts enumerated before the certified priority-cut pruning
    /// (equal to `total_cuts` when the analysis did not run).
    pub cuts_enumerated: usize,
    /// Cuts removed by the priority-cut analysis (certified dominance
    /// and liveness drops plus heuristic rank-cap truncation).
    pub cuts_pruned: usize,
    /// Region sub-MILPs solved by the feedback-guided decomposition
    /// (0 when [`FlowOptions::decompose`] is off).
    pub subproblems_solved: usize,
    /// Improving region incumbents the decomposition stitched into the
    /// seed before the full solve.
    pub stitched_incumbents: usize,
    /// Provenance of the reported incumbent: `"none"` (no feasible
    /// point), `"seed"` (the baseline/heuristic seed survived),
    /// `"decompose"` (a stitched region incumbent survived), or
    /// `"solver"` (the tree search improved on what it was given).
    pub incumbent_source: &'static str,
    /// Reuse counters of the decomposition's shared re-solve context
    /// (`None` when [`FlowOptions::decompose`] or
    /// [`FlowOptions::resolve`] is off).
    pub resolve: Option<pipemap_milp::ResolveStats>,
    /// Presolve/warm-start/parallelism counters from the solver.
    pub solver: SolverStats,
}

/// What the `pipemap-analyze` pre-pass bought for one flow.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrePassStats {
    /// Nodes in the original graph.
    pub nodes_before: usize,
    /// Nodes in the simplified graph the flow actually scheduled.
    pub nodes_after: usize,
    /// Proof-carrying rewrites applied.
    pub rewrites: usize,
    /// Bits of logic pruned (removed node widths + narrowing savings).
    pub bits_pruned: u64,
    /// Enumerated cuts on the original graph with the flow's config.
    pub cuts_before: usize,
    /// Enumerated cuts on the simplified graph (with liveness pruning).
    pub cuts_after: usize,
}

/// Outcome of one flow on one benchmark.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// Which flow produced this.
    pub flow: Flow,
    /// Achieved initiation interval.
    pub ii: u32,
    /// The graph the flow actually scheduled — the original, or the
    /// `pipemap-analyze`-simplified rewrite when the pre-pass ran. The
    /// implementation's node indices refer to **this** graph; verify it
    /// with `check_flows_with_graphs`.
    pub dfg: Dfg,
    /// The schedule + cover (over [`FlowResult::dfg`]).
    pub implementation: Implementation,
    /// Area/timing numbers through the shared physical model.
    pub qor: Qor,
    /// Solver statistics (`None` for the heuristic flow).
    pub milp: Option<MilpStats>,
    /// Pre-pass savings (`None` when the pre-pass did not run or did not
    /// change the graph).
    pub analysis: Option<PrePassStats>,
}

/// Run one flow end to end.
///
/// # Errors
///
/// Returns [`CoreError`] if no II admits a schedule, the solver fails
/// numerically, or (internal bug) an illegal implementation is produced.
pub fn run_flow(
    dfg: &Dfg,
    target: &Target,
    flow: Flow,
    opts: &FlowOptions,
) -> Result<FlowResult, CoreError> {
    let _flow_span = obs::span(match flow {
        Flow::HlsTool => "flow:hls-tool",
        Flow::MilpBase => "flow:milp-base",
        Flow::MilpMap => "flow:milp-map",
        Flow::MappedHeuristic => "flow:map-heur",
    });
    // The mapping-aware flow first runs the analyze pre-pass: the MILP
    // then models the simplified graph with liveness-pruned cut sets.
    let (work, mut pre, live) = if opts.analyze && flow == Flow::MilpMap {
        let _s = obs::span("analyze-pre-pass");
        analyze_pre_pass(dfg, target, opts)
    } else {
        (dfg.clone(), None, None)
    };
    // The downstream mapper of the baseline flow always sees real cuts.
    // The mapping-aware MILP flow routes enumeration through the
    // certified priority-cut analysis instead: the raw pool is pruned
    // with dominance/liveness certificates and ranked down to
    // `max_cuts_per_root`, so the model it builds is strictly smaller.
    let mut map_cfg = opts.cut_config(target);
    let mut prune: Option<CutPruneStats> = None;
    let db_map = if opts.priority_cuts && flow == Flow::MilpMap {
        let _s = obs::span("cut-enum");
        let out = priority_cuts(&work, &map_cfg, &opts.prune_config(live));
        prune = Some(out.stats);
        out.db
    } else {
        let _s = obs::span("cut-enum");
        map_cfg.live_bits = live;
        CutDb::enumerate(&work, &map_cfg)
    };
    if let Some(p) = pre.as_mut() {
        p.cuts_after = db_map.total_cuts();
    }
    let baseline = {
        let _s = obs::span("baseline");
        schedule_baseline(&work, target, opts.ii, &db_map)?
    };
    match flow {
        Flow::HlsTool => {
            let qor = {
                let _s = obs::span("qor");
                Qor::evaluate(&work, target, &baseline.implementation)
            };
            Ok(FlowResult {
                flow,
                ii: baseline.ii,
                dfg: work,
                implementation: baseline.implementation,
                qor,
                milp: None,
                analysis: pre,
            })
        }
        Flow::MappedHeuristic => {
            // The future-work heuristic; fall back to the baseline when
            // the mapped list schedule cannot be covered.
            let r = crate::baseline::schedule_mapped_heuristic(&work, target, opts.ii, &db_map)
                .unwrap_or(baseline);
            let qor = {
                let _s = obs::span("qor");
                Qor::evaluate(&work, target, &r.implementation)
            };
            Ok(FlowResult {
                flow,
                ii: r.ii,
                dfg: work,
                implementation: r.implementation,
                qor,
                milp: None,
                analysis: pre,
            })
        }
        Flow::MilpBase => {
            let db = {
                let _s = obs::span("cut-enum");
                CutDb::enumerate(&work, &CutConfig::trivial_only(target))
            };
            run_milp(
                &work, target, flow, opts, &db, &db_map, &baseline, pre, None,
            )
        }
        Flow::MilpMap => run_milp(
            &work, target, flow, opts, &db_map, &db_map, &baseline, pre, prune,
        ),
    }
}

/// Simplify `dfg` with `pipemap-analyze` and derive liveness masks for
/// cut pruning. The rewrite is only trusted after a seeded replay against
/// the original; any failure falls back to the original graph (the
/// pre-pass is an optimization, never a correctness risk).
fn analyze_pre_pass(
    dfg: &Dfg,
    target: &Target,
    opts: &FlowOptions,
) -> (Dfg, Option<PrePassStats>, Option<Vec<u64>>) {
    let Ok(out) = pipemap_analyze::simplify(dfg) else {
        return (dfg.clone(), None, None);
    };
    if pipemap_verify::check_graph_equivalence("analyze pre-pass", dfg, &out.dfg, 16, 0xC0FFEE)
        .has_errors()
    {
        return (dfg.clone(), None, None);
    }
    let Ok(analysis) = Analysis::run(&out.dfg) else {
        return (dfg.clone(), None, None);
    };
    let live: Vec<u64> = out.dfg.node_ids().map(|v| analysis.live(v)).collect();
    let cuts_before = CutDb::enumerate(dfg, &opts.cut_config(target)).total_cuts();
    let stats = PrePassStats {
        nodes_before: out.stats.nodes_before,
        nodes_after: out.stats.nodes_after,
        rewrites: out.rewrites.len(),
        bits_pruned: out.stats.bits_pruned,
        cuts_before,
        cuts_after: 0, // filled in once the flow's cut database exists
    };
    (out.dfg, Some(stats), Some(live))
}

/// Convenience: run all three flows. With `opts.jobs > 1` the flows run
/// concurrently on scoped threads; results keep [`Flow::ALL`] order and
/// are identical to the serial run (each flow is independent and the
/// solver itself is deterministic in its thread count).
///
/// # Errors
///
/// Propagates the first flow failure (in [`Flow::ALL`] order).
pub fn run_all_flows(
    dfg: &Dfg,
    target: &Target,
    opts: &FlowOptions,
) -> Result<Vec<FlowResult>, CoreError> {
    if opts.jobs <= 1 {
        return Flow::ALL
            .iter()
            .map(|&f| run_flow(dfg, target, f, opts))
            .collect();
    }
    let mut slots: Vec<Option<Result<FlowResult, CoreError>>> =
        Flow::ALL.iter().map(|_| None).collect();
    std::thread::scope(|scope| {
        for (slot, &flow) in slots.iter_mut().zip(Flow::ALL.iter()) {
            scope.spawn(move || {
                let _lane = obs::lane_guard(format!("flow-{}", flow.label()));
                *slot = Some(run_flow(dfg, target, flow, opts));
            });
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("flow thread completed"))
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn run_milp(
    dfg: &Dfg,
    target: &Target,
    flow: Flow,
    opts: &FlowOptions,
    db: &CutDb,
    db_map: &CutDb,
    baseline: &BaselineResult,
    pre: Option<PrePassStats>,
    prune: Option<CutPruneStats>,
) -> Result<FlowResult, CoreError> {
    let ii = baseline.ii;
    let m = baseline.implementation.schedule.depth() + opts.extra_latency;
    let build_span = obs::span("milp-build");
    let f = formulation::build_weighted(dfg, target, db, ii, m, opts.alpha, opts.beta, opts.gamma);

    // Seed candidates in preference order: MILP-base starts from the
    // baseline schedule with an all-unit cover (its model has no other
    // cuts); MILP-map prefers the mapping-aware list-scheduling heuristic
    // when it beats the baseline. The first candidate the model accepts
    // (inside its windows, cuts in the database, all rows satisfied) wins.
    let mut seed_candidates: Vec<Implementation> = Vec::new();
    match flow {
        Flow::MilpBase => {
            seed_candidates.push(unit_cover_implementation(dfg, db, &baseline.implementation));
        }
        _ => {
            let mut cands = vec![baseline.implementation.clone()];
            if let Some(h) = crate::baseline::schedule_mapped_heuristic(dfg, target, ii, db) {
                if h.ii == ii {
                    cands.push(h.implementation);
                }
            }
            // Rank by the Eq. 15 objective, breaking ties toward fewer
            // FFs (the paper's headline metric).
            let cost = |imp: &Implementation| {
                let q = Qor::evaluate(dfg, target, imp);
                (opts.alpha * q.luts as f64 + opts.beta * q.ffs as f64, q.ffs)
            };
            cands.sort_by(|a, b| {
                let (ca, fa) = cost(a);
                let (cb, fb) = cost(b);
                ca.partial_cmp(&cb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(fa.cmp(&fb))
            });
            seed_candidates = cands;
        }
    }
    let mut seed = if opts.seed_with_baseline {
        seed_candidates.iter().find_map(|imp| {
            let v = f.seed(dfg, target, db, imp)?;
            f.model.check_feasible(&v, 1e-6).is_none().then_some(v)
        })
    } else {
        None
    };
    drop(build_span);

    // Feedback-guided subgraph decomposition: refine the seed by
    // re-optimizing MFFC-bounded regions (most LP-fractional first)
    // before the full solve sees it. A quarter of the budget goes to
    // the regions; the refined incumbent enters the tree as its primal
    // bound.
    let mut subproblems_solved = 0usize;
    let mut stitched_incumbents = 0usize;
    let mut resolve_stats: Option<pipemap_milp::ResolveStats> = None;
    let mut incumbent_source: &'static str = if seed.is_some() { "seed" } else { "none" };
    if opts.decompose {
        if let Some(sv) = seed.take() {
            let _s = obs::span("decompose");
            let budget = opts.time_limit / 4;
            let relax =
                pipemap_milp::solve_relaxation(&f.model, budget.min(Duration::from_secs(5)));
            let dcfg = crate::decompose::DecomposeConfig {
                time_budget: budget,
                jobs: opts.jobs.max(1),
                incremental: opts.resolve,
                ..crate::decompose::DecomposeConfig::default()
            };
            let out = crate::decompose::refine_incumbent(
                dfg,
                &f,
                sv,
                relax.as_ref().map(|(_, x)| x.as_slice()),
                &dcfg,
            );
            subproblems_solved = out.subproblems_solved;
            stitched_incumbents = out.stitched_incumbents;
            resolve_stats = out.resolve_stats;
            if out.stitched_incumbents > 0 {
                incumbent_source = "decompose";
            }
            seed = Some(out.values);
        }
    }
    let injected_obj = seed.as_ref().map(|v| f.model.objective_value(v));

    let solver_opts = SolverOptions {
        time_limit: opts.time_limit,
        initial_solution: seed,
        jobs: opts.jobs.max(1),
        presolve: opts.presolve,
        warm_start: opts.warm_start,
        probing: opts.probing,
        cuts: opts.cuts,
        symmetry: opts.symmetry,
        gomory_cuts: opts.gomory_cuts,
        ..SolverOptions::default()
    };
    let start = Instant::now();
    let solved = {
        let _s = obs::span_with(
            "milp-solve",
            vec![
                ("vars", f.model.num_vars().into()),
                ("rows", f.model.num_rows().into()),
            ],
        );
        f.model.solve(&solver_opts)
    };
    let solve_time = start.elapsed();
    // A numerical solver failure or an empty incumbent degrades to the
    // best seed: it is a genuine feasible solution of the same model.
    let (mut implementation, mut status, objective, mut best_bound, nodes, lp_iterations, solver) =
        match solved {
            Ok(r) if r.status.has_solution() => {
                let imp = f.extract(dfg, db, &r.values);
                (
                    imp,
                    r.status,
                    r.objective,
                    r.best_bound,
                    r.nodes,
                    r.lp_iterations,
                    r.stats,
                )
            }
            Ok(r) => match seed_fallback(dfg, target, opts, &seed_candidates) {
                Some((imp, obj)) => (
                    imp,
                    Status::Feasible,
                    obj,
                    f64::NEG_INFINITY,
                    r.nodes,
                    r.lp_iterations,
                    r.stats,
                ),
                None => return Err(CoreError::NoSolution(r.status)),
            },
            Err(e) => match seed_fallback(dfg, target, opts, &seed_candidates) {
                Some((imp, obj)) => (
                    imp,
                    Status::Feasible,
                    obj,
                    f64::NEG_INFINITY,
                    0,
                    0,
                    SolverStats::default(),
                ),
                None => return Err(CoreError::Milp(e)),
            },
        };
    if status.has_solution() {
        match injected_obj {
            Some(io) if objective < io - 1e-9 => incumbent_source = "solver",
            None => incumbent_source = "solver",
            _ => {}
        }
    }
    // Dual side of the decomposition: when the tree timed out, the
    // partition bound (sum of per-region dual bounds under the split
    // objective — see [`crate::decompose::partition_bound`]) often beats
    // the tree's global bound, because each term sees its own region's
    // integrality. Meeting the incumbent proves it optimal.
    if opts.decompose
        && matches!(status, Status::TimedOut | Status::Feasible)
        && objective.is_finite()
    {
        let dcfg = crate::decompose::DecomposeConfig {
            // Half the solve budget: this only runs when the tree has
            // already timed out, and every second here works the bound
            // side of the gap, which the tree was failing to move.
            time_budget: opts.time_limit / 2,
            jobs: opts.jobs.max(1),
            incremental: opts.resolve,
            ..crate::decompose::DecomposeConfig::default()
        };
        if let Some((pb, groups)) = crate::decompose::partition_bound(dfg, &f, &dcfg) {
            subproblems_solved += groups;
            let pb = pipemap_milp::lift_to_objective_grid(&f.model, pb);
            if pb > best_bound {
                best_bound = pb;
                if best_bound >= objective - 1e-6 {
                    best_bound = objective;
                    status = Status::Optimal;
                }
            }
        }
    }
    if obs::metrics::enabled() {
        obs::metrics::gauge("model.cols").set(f.model.num_vars() as f64);
        obs::metrics::gauge("model.rows").set(f.model.num_rows() as f64);
    }
    if obs::enabled() {
        // Final solver verdict for the flight recorder, emitted after the
        // partition-bound pass so the recorded gap matches what callers
        // see in `MilpStats`.
        let gap_rel = if objective.is_finite() && best_bound.is_finite() {
            (objective - best_bound).abs() / objective.abs().max(1e-9)
        } else {
            f64::NAN
        };
        obs::instant_with(
            "milp-stats",
            vec![
                ("status", status.to_string().into()),
                ("objective", objective.into()),
                ("best_bound", best_bound.into()),
                ("gap_rel", gap_rel.into()),
                ("nodes", nodes.into()),
                ("lp_iterations", lp_iterations.into()),
                ("variables", f.model.num_vars().into()),
                ("constraints", f.model.num_rows().into()),
                ("incumbent_source", incumbent_source.into()),
            ],
        );
    }
    // Route legality through the full diagnostics verifier: unlike the
    // fail-fast `pipemap_netlist::verify`, it reports *every* violated
    // invariant with a stable `P0xxx` code.
    let diags = {
        let _s = obs::span("verify");
        pipemap_verify::check_implementation(dfg, target, &implementation)
    };
    if diags.has_errors() {
        return Err(CoreError::Verification(diags));
    }
    if flow == Flow::MilpBase {
        // Paper flow: the MILP-base *schedule* is handed to the commercial
        // tool, whose downstream technology mapper still runs (bounded by
        // the schedule's registers). Re-cover the schedule with real cuts;
        // keep the unit cover if the greedy mapper violates timing.
        let _s = obs::span("remap");
        let remapped = Implementation {
            cover: crate::baseline::remap_schedule(dfg, db_map, &implementation.schedule),
            schedule: implementation.schedule.clone(),
        };
        if !pipemap_verify::check_implementation(dfg, target, &remapped).has_errors() {
            implementation = remapped;
        }
    }
    let qor = {
        let _s = obs::span("qor");
        Qor::evaluate(dfg, target, &implementation)
    };
    Ok(FlowResult {
        flow,
        ii,
        dfg: dfg.clone(),
        implementation,
        qor,
        analysis: pre,
        milp: Some(MilpStats {
            status,
            objective,
            best_bound,
            solve_time,
            nodes,
            lp_iterations,
            variables: f.model.num_vars(),
            constraints: f.model.num_rows(),
            total_cuts: db.total_cuts(),
            cuts_enumerated: prune.map_or_else(|| db.total_cuts(), |p| p.cuts_enumerated),
            cuts_pruned: prune.map_or(0, |p| p.cuts_pruned()),
            subproblems_solved,
            stitched_incumbents,
            incumbent_source,
            resolve: resolve_stats,
            solver,
        }),
    })
}

/// Size of the mapping-aware MILP exactly as [`run_flow`] would build it
/// for [`Flow::MilpMap`] under `opts`, without solving: `(variables,
/// constraints, total_cuts)`. Pair with [`milp_map_model_size_raw`] to
/// report how much the certified priority-cut analysis shrinks the
/// model a solver faces.
///
/// # Errors
///
/// Returns [`CoreError`] if no initiation interval admits a baseline
/// schedule.
pub fn milp_map_model_size(
    dfg: &Dfg,
    target: &Target,
    opts: &FlowOptions,
) -> Result<(usize, usize, usize), CoreError> {
    let (work, _, live) = if opts.analyze {
        analyze_pre_pass(dfg, target, opts)
    } else {
        (dfg.clone(), None, None)
    };
    let mut map_cfg = opts.cut_config(target);
    let db = if opts.priority_cuts {
        priority_cuts(&work, &map_cfg, &opts.prune_config(live)).db
    } else {
        map_cfg.live_bits = live;
        CutDb::enumerate(&work, &map_cfg)
    };
    let baseline = schedule_baseline(&work, target, opts.ii, &db)?;
    let m = baseline.implementation.schedule.depth() + opts.extra_latency;
    let f = formulation::build_weighted(
        &work,
        target,
        &db,
        baseline.ii,
        m,
        opts.alpha,
        opts.beta,
        opts.gamma,
    );
    Ok((f.model.num_vars(), f.model.num_rows(), db.total_cuts()))
}

/// Size of the mapping-aware MILP over the **raw** K-feasible cut pool:
/// the enumeration with no dominance filtering at all, which is exactly
/// the pool the priority-cut analysis starts from (its
/// `cuts_enumerated` counter). This is the unpruned comparator for the
/// priority-cut analysis — the model a solver would face if every
/// K-feasible cut reached the formulation.
///
/// # Errors
///
/// Returns [`CoreError`] if no initiation interval admits a baseline
/// schedule.
pub fn milp_map_model_size_raw(
    dfg: &Dfg,
    target: &Target,
    opts: &FlowOptions,
) -> Result<(usize, usize, usize), CoreError> {
    let (work, _, _) = if opts.analyze {
        analyze_pre_pass(dfg, target, opts)
    } else {
        (dfg.clone(), None, None)
    };
    let map_cfg = opts.cut_config(target);
    let pcfg = opts.prune_config(None);
    let raw_cfg = CutConfig {
        filter_dominated: false,
        live_bits: None,
        max_cuts: map_cfg.max_cuts.max(pcfg.raw_cuts),
        ..map_cfg
    };
    let db = CutDb::enumerate(&work, &raw_cfg);
    let baseline = schedule_baseline(&work, target, opts.ii, &db)?;
    let m = baseline.implementation.schedule.depth() + opts.extra_latency;
    let f = formulation::build_weighted(
        &work,
        target,
        &db,
        baseline.ii,
        m,
        opts.alpha,
        opts.beta,
        opts.gamma,
    );
    Ok((f.model.num_vars(), f.model.num_rows(), db.total_cuts()))
}

/// Best verifying seed plus its Eq. 15 objective.
fn seed_fallback(
    dfg: &Dfg,
    target: &Target,
    opts: &FlowOptions,
    candidates: &[Implementation],
) -> Option<(Implementation, f64)> {
    candidates
        .iter()
        .find(|imp| !pipemap_verify::check_implementation(dfg, target, imp).has_errors())
        .map(|imp| {
            let q = Qor::evaluate(dfg, target, imp);
            (
                imp.clone(),
                opts.alpha * q.luts as f64 + opts.beta * q.ffs as f64,
            )
        })
}

/// The baseline schedule re-covered with unit cuts only (every
/// LUT-mappable node its own root) — the feasible point of the
/// mapping-agnostic model.
fn unit_cover_implementation(dfg: &Dfg, db: &CutDb, base: &Implementation) -> Implementation {
    let selected: Vec<Option<Cut>> = dfg.node_ids().map(|v| db.cuts(v).unit().cloned()).collect();
    Implementation {
        schedule: base.schedule.clone(),
        cover: Cover::new(selected),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_ir::{DfgBuilder, InputStreams};
    use pipemap_netlist::verify_functional;

    /// The paper's Fig. 1 kernel (2-bit ops as in Fig. 2).
    fn rs_mini() -> Dfg {
        let mut b = DfgBuilder::new("rs_mini");
        let s = b.input("s", 2);
        let t = b.input("t", 2);
        let e_prev = b.placeholder(2);
        let a = b.shr(s, 1);
        b.name_node(a, "A");
        let bb = b.xor(t, a);
        b.name_node(bb, "B");
        let c = b.is_non_negative(bb);
        b.name_node(c, "C");
        let d = b.mux(c, bb, e_prev);
        b.name_node(d, "D");
        let e = b.xor(d, a);
        b.name_node(e, "E");
        b.bind(e_prev, e, 1).expect("feedback");
        b.output("out", e);
        b.finish().expect("valid")
    }

    #[test]
    fn fig1_shapes_reproduce() {
        // Paper Fig. 1: additive flow needs 3 pipeline stages; the
        // mapping-aware schedule fits in 1 stage with 2 LUTs.
        let g = rs_mini();
        let target = Target::fig1();
        let opts = FlowOptions::default();

        let base = run_flow(&g, &target, Flow::HlsTool, &opts).expect("hls flow");
        assert!(
            base.qor.depth >= 3,
            "additive schedule should need 3 stages, got {}",
            base.qor.depth
        );
        assert!(base.qor.ffs > 0);

        let map = run_flow(&g, &target, Flow::MilpMap, &opts).expect("milp-map");
        assert_eq!(map.qor.depth, 1, "mapped kernel fits one stage");
        // 2 word-level LUT roots * 2 bits... the paper counts LUTs: D+E
        // merged cone and C(+B+A) cone -> 2 LUTs in Fig. 1's bit-level
        // count; at word level: E's cone (2 bits) + C's cone (1 bit) +
        // possibly B as root. Area must be well below the additive flow.
        assert!(
            map.qor.luts <= base.qor.luts,
            "map {} vs base {}",
            map.qor.luts,
            base.qor.luts
        );
        assert!(map.qor.ffs < base.qor.ffs);

        // Functional equivalence of all three flows.
        let ins = InputStreams::random(&g, 30, 99);
        for r in [&base, &map] {
            verify_functional(&g, &target, &r.implementation, &ins, 30).expect("functional");
        }
    }

    #[test]
    fn milp_base_matches_or_beats_hls_on_objective() {
        let g = rs_mini();
        let target = Target::fig1();
        let opts = FlowOptions::default();
        let base = run_flow(&g, &target, Flow::MilpBase, &opts).expect("milp-base");
        let stats = base.milp.expect("milp stats");
        assert!(stats.status.has_solution());
        // The exact solver's objective can only improve on its seed.
        assert!(stats.objective <= stats.best_bound + 1e-6 || stats.objective.is_finite());
        let ins = InputStreams::random(&g, 30, 7);
        verify_functional(&g, &target, &base.implementation, &ins, 30).expect("functional");
    }

    #[test]
    fn gomory_and_decompose_preserve_the_optimum() {
        let g = rs_mini();
        let target = Target::fig1();
        let plain = run_flow(&g, &target, Flow::MilpMap, &FlowOptions::default()).expect("plain");
        let opts = FlowOptions {
            gomory_cuts: true,
            decompose: true,
            ..FlowOptions::default()
        };
        let both = run_flow(&g, &target, Flow::MilpMap, &opts).expect("with features");
        let po = plain.milp.expect("stats").objective;
        let s = both.milp.expect("stats");
        assert!(
            (s.objective - po).abs() <= 1e-6,
            "objective moved: {} vs {po}",
            s.objective
        );
        assert!(["seed", "decompose", "solver"].contains(&s.incumbent_source));
        assert!(s.subproblems_solved >= s.stitched_incumbents);
        let ins = InputStreams::random(&g, 30, 13);
        verify_functional(&g, &target, &both.implementation, &ins, 30).expect("functional");
    }

    #[test]
    fn map_never_worse_than_base_objective() {
        let g = rs_mini();
        let target = Target::fig1();
        let opts = FlowOptions::default();
        let base = run_flow(&g, &target, Flow::MilpBase, &opts).expect("base");
        let map = run_flow(&g, &target, Flow::MilpMap, &opts).expect("map");
        let ob = base.milp.expect("stats").objective;
        let om = map.milp.expect("stats").objective;
        // The map model's feasible set contains every base solution (unit
        // cuts are always enumerated), so its optimum is no worse.
        assert!(om <= ob + 1e-6, "map {om} > base {ob}");
    }
}
