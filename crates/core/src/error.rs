//! Error type for the scheduling flows.

use std::error::Error;
use std::fmt;

use pipemap_milp::{MilpError, Status};
use pipemap_netlist::ImplError;
use pipemap_verify::Diagnostics;

/// Failure of a scheduling flow.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// No initiation interval up to the internal cap admits a legal
    /// schedule (recurrence or resource bound).
    IiInfeasible {
        /// The II originally requested.
        requested: u32,
        /// The largest II attempted.
        tried_up_to: u32,
    },
    /// A produced implementation failed legality verification (internal
    /// invariant violation).
    IllegalImplementation(ImplError),
    /// The MILP solver failed numerically.
    Milp(MilpError),
    /// The MILP terminated without any feasible solution.
    NoSolution(Status),
    /// The full static verifier rejected a produced implementation; the
    /// attached [`Diagnostics`] carry every violated invariant with its
    /// stable `P0xxx` code.
    Verification(Diagnostics),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::IiInfeasible {
                requested,
                tried_up_to,
            } => write!(
                f,
                "no feasible schedule at any II in {requested}..={tried_up_to}"
            ),
            CoreError::IllegalImplementation(e) => write!(f, "illegal implementation: {e}"),
            CoreError::Milp(e) => write!(f, "milp solver failure: {e}"),
            CoreError::NoSolution(s) => write!(f, "milp returned no solution (status {s})"),
            CoreError::Verification(ds) => {
                write!(
                    f,
                    "implementation rejected by verifier: {} error(s), first: {}",
                    ds.error_count(),
                    ds.iter()
                        .find(|d| d.severity == pipemap_verify::Severity::Error)
                        .map(|d| format!("{} {}", d.code.as_str(), d.message))
                        .unwrap_or_default()
                )
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::IllegalImplementation(e) => Some(e),
            CoreError::Milp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MilpError> for CoreError {
    fn from(e: MilpError) -> Self {
        CoreError::Milp(e)
    }
}

impl From<ImplError> for CoreError {
    fn from(e: ImplError) -> Self {
        CoreError::IllegalImplementation(e)
    }
}

impl From<Diagnostics> for CoreError {
    fn from(ds: Diagnostics) -> Self {
        CoreError::Verification(ds)
    }
}
