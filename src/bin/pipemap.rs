//! `pipemap` — command-line front end for the mapping-aware pipeline
//! synthesis flows.
//!
//! ```text
//! pipemap info     <file.pmir>
//! pipemap dot      <file.pmir> [--flow FLOW ...]      # graphviz to stdout
//! pipemap schedule <file.pmir> [--flow FLOW] [--limit SECS] [--ii N] [--k N] [--jobs N]
//! pipemap verilog  <file.pmir> [--flow FLOW] [--module NAME] [...]
//! pipemap lint     <file.pmir> [--json]               # static IR lint (P0xxx)
//! pipemap lint     --codes                            # lint-code registry
//! pipemap analyze  <file.pmir> [--json] [--dot] [--ii N] [--k N]
//! pipemap verify   <file.pmir> [--limit SECS] [--ii N] [--k N] [--json]
//! pipemap bench    <NAME>      [--limit SECS]         # built-in benchmark
//! pipemap run      <NAME>                             # alias for bench
//! pipemap sweep    <file.pmir> [--ii-list 1,2,4] [--k-list 4,6] [--resolve on|off] [--audit]
//! pipemap report   <file.pmir|NAME|trace.json> [--flow FLOW] [--json] [--report-out FILE]
//! ```
//!
//! `FLOW` is one of `hls`, `base`, `map` (default), `heur`. Flags may
//! appear before or after the subcommand.
//!
//! `--jobs N` sets the MILP branch-and-bound worker-thread count (and
//! runs the flows of `verify`/`bench` concurrently); `--jobs 0` uses all
//! available cores. The solver is deterministic in `--jobs`: every
//! thread count returns the identical status, objective, and schedule.
//!
//! `--probing on|off`, `--cuts on|off`, and `--symmetry on|off` toggle
//! the solver's structural analysis (all on by default): probing-based
//! fixings/implications, root clique/cover cut separation, and orbital
//! fixing from verified column symmetries.
//!
//! `--gomory-cuts on|off` (off by default) adds Gomory mixed-integer
//! cuts read off the optimal simplex tableau to the root cut loop; each
//! shipped cut carries a derivation certificate audited by the `P07xx`
//! verify pass. `--decompose on|off` (off by default) refines the warm
//! incumbent before branch-and-bound by re-solving MFFC-cone subgraphs
//! against a frozen complement, ordered by LP-relaxation fractionality.
//!
//! `--resolve on|off` (on by default) routes repeated closely-related
//! solves — the decomposition's sub-MILPs, and every point of the
//! `sweep` subcommand — through an editable re-solve context that
//! warm-starts each solve from the previous one's simplex basis and LU
//! factors instead of solving cold. `sweep` explores the II × K ×
//! weight design space over one such context per structural base (cold
//! per-point replay with `--resolve off`); `--audit` re-checks every
//! incremental sweep point against a from-scratch solve.
//!
//! `--priority-cuts on|off` toggles the certified priority-cut analysis
//! in front of the mapping-aware MILP (off by default — the ranked
//! truncation trades mapping quality for a much smaller model): dominated
//! and provably-dead cuts are pruned with machine-checkable certificates
//! and the survivors ranked down to `--max-cuts-per-root N` (default 4)
//! cuts per node, shrinking the MILP before branch-and-bound starts.
//!
//! `--trace FILE` writes a Chrome trace-event JSON of the run (load it
//! in Perfetto or `chrome://tracing`; one lane per flow/solver worker);
//! `--metrics` prints the merged phase-time tree to stderr. Both are
//! pure observers: results are identical with tracing on or off.
//!
//! `--metrics-out FILE` writes the typed metrics registry (counters,
//! gauges, log-linear histograms of LP solve times/iterations, node and
//! dive depths, cut violations) as JSON; `--metrics-prom FILE` writes
//! the same snapshot in Prometheus text exposition format. Either flag
//! enables metric collection for the run; like tracing, collection is a
//! pure observer behind one relaxed atomic check.
//!
//! `report` is the solve flight recorder: it runs the flow traced (or
//! re-ingests a `--trace` Chrome JSON written earlier) and renders a
//! structured `SolveReport` — wall-clock attributed to phases, gap
//! closure attributed to features (cut families, warm starts, incumbent
//! provenance), per-worker tree-search balance, and a diagnosis naming
//! the top gap-closing feature. `--json` prints the machine-readable
//! twin instead; `--report-out FILE` writes it alongside the human text.
//!
//! `lint` parses the textual IR and runs the well-formedness pass,
//! reporting every finding with its stable `P0xxx` code and source span;
//! `analyze` runs the bit-level dataflow analyses and proof-carrying
//! simplification, reporting per-node facts and the cut/MILP-size
//! savings (`--dot` renders the facts as a shaded graphviz graph);
//! `verify` additionally runs *all* scheduling flows, the differential
//! flow checker (legality, QoR recount, simulation equivalence, RTL
//! lint, analyze-pre-pass replay), and the `P06xx` priority-cut pruning
//! audit (certificate re-derivation, cover-feasibility recount,
//! objective-invariance spot-check).
//!
//! Exit codes for `lint` and `verify`: 0 when clean *or* only
//! warning/info diagnostics fired, 1 when any error-severity diagnostic
//! fired. `--deny-warnings` promotes warnings to exit 1 as well.

use std::error::Error;
use std::process::ExitCode;
use std::time::Duration;

use pipemap::analyze::Analysis;
use pipemap::core::{run_flow, Flow, FlowOptions};
use pipemap::ir::{parse_dfg, to_dot, to_dot_styled, Dfg, InputStreams, Target};
use pipemap::netlist::{schedule_report, to_verilog, verify_functional};
use pipemap::report::analyze_report;
use pipemap::verify::{check_flows_with_graphs, lint_text, Code, FlowCheckOptions};

struct Args {
    positional: Vec<String>,
    flow: Flow,
    limit: u64,
    ii: u32,
    k: u32,
    module: String,
    json: bool,
    codes: bool,
    dot: bool,
    jobs: usize,
    trace: Option<String>,
    metrics: bool,
    metrics_out: Option<String>,
    metrics_prom: Option<String>,
    report_out: Option<String>,
    probing: bool,
    cuts: bool,
    symmetry: bool,
    gomory_cuts: bool,
    decompose: bool,
    priority_cuts: bool,
    max_cuts_per_root: usize,
    deny_warnings: bool,
    resolve: bool,
    audit: bool,
    ii_list: Option<Vec<u32>>,
    k_list: Option<Vec<u32>>,
}

fn parse_switch(flag: &str, v: Option<String>) -> Result<bool, String> {
    match v.as_deref() {
        Some("on") => Ok(true),
        Some("off") => Ok(false),
        _ => Err(format!("{flag} needs `on` or `off`")),
    }
}

fn parse_u32_list(flag: &str, v: Option<String>) -> Result<Vec<u32>, String> {
    let raw = v.ok_or_else(|| format!("{flag} needs a comma-separated list, e.g. 1,2,4"))?;
    let list: Result<Vec<u32>, _> = raw.split(',').map(|s| s.trim().parse::<u32>()).collect();
    match list {
        Ok(l) if !l.is_empty() => Ok(l),
        _ => Err(format!("{flag}: could not parse `{raw}` as a u32 list")),
    }
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut a = Args {
        positional: Vec::new(),
        flow: Flow::MilpMap,
        limit: 30,
        ii: 1,
        k: 4,
        module: "pipeline".into(),
        json: false,
        codes: false,
        dot: false,
        jobs: 1,
        trace: None,
        metrics: false,
        metrics_out: None,
        metrics_prom: None,
        report_out: None,
        probing: true,
        cuts: true,
        symmetry: true,
        gomory_cuts: false,
        decompose: false,
        priority_cuts: false,
        max_cuts_per_root: 4,
        deny_warnings: false,
        resolve: true,
        audit: false,
        ii_list: None,
        k_list: None,
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--flow" => {
                let v = argv.next().ok_or("--flow needs a value")?;
                a.flow = match v.as_str() {
                    "hls" => Flow::HlsTool,
                    "base" => Flow::MilpBase,
                    "map" => Flow::MilpMap,
                    "heur" => Flow::MappedHeuristic,
                    other => return Err(format!("unknown flow `{other}`")),
                };
            }
            "--limit" => {
                a.limit = argv
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--limit needs seconds")?;
            }
            "--ii" => {
                a.ii = argv
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--ii needs a number")?;
            }
            "--k" => {
                a.k = argv
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--k needs a number")?;
            }
            "--module" => {
                a.module = argv.next().ok_or("--module needs a name")?;
            }
            "--jobs" => {
                let j: usize = argv
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--jobs needs a thread count (0 = all cores)")?;
                a.jobs = if j == 0 {
                    std::thread::available_parallelism().map_or(1, |n| n.get())
                } else {
                    j
                };
            }
            "--trace" => {
                a.trace = Some(argv.next().ok_or("--trace needs an output file")?);
            }
            "--metrics-out" => {
                a.metrics_out = Some(argv.next().ok_or("--metrics-out needs an output file")?);
            }
            "--metrics-prom" => {
                a.metrics_prom = Some(argv.next().ok_or("--metrics-prom needs an output file")?);
            }
            "--report-out" => {
                a.report_out = Some(argv.next().ok_or("--report-out needs an output file")?);
            }
            "--probing" => a.probing = parse_switch("--probing", argv.next())?,
            "--cuts" => a.cuts = parse_switch("--cuts", argv.next())?,
            "--symmetry" => a.symmetry = parse_switch("--symmetry", argv.next())?,
            "--gomory-cuts" => a.gomory_cuts = parse_switch("--gomory-cuts", argv.next())?,
            "--decompose" => a.decompose = parse_switch("--decompose", argv.next())?,
            "--priority-cuts" => a.priority_cuts = parse_switch("--priority-cuts", argv.next())?,
            "--max-cuts-per-root" => {
                a.max_cuts_per_root = argv
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or("--max-cuts-per-root needs a count >= 1")?;
            }
            "--resolve" => a.resolve = parse_switch("--resolve", argv.next())?,
            "--audit" => a.audit = true,
            "--ii-list" => {
                a.ii_list = Some(parse_u32_list("--ii-list", argv.next())?);
            }
            "--k-list" => {
                a.k_list = Some(parse_u32_list("--k-list", argv.next())?);
            }
            "--deny-warnings" => a.deny_warnings = true,
            "--metrics" => a.metrics = true,
            "--json" => a.json = true,
            "--codes" => a.codes = true,
            "--dot" => a.dot = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown option `{other}`"));
            }
            other => a.positional.push(other.to_string()),
        }
    }
    Ok(a)
}

fn load(path: &str) -> Result<Dfg, Box<dyn Error>> {
    let src = std::fs::read_to_string(path)?;
    Ok(parse_dfg(&src)?)
}

fn options(a: &Args) -> FlowOptions {
    FlowOptions {
        ii: a.ii,
        time_limit: Duration::from_secs(a.limit),
        jobs: a.jobs,
        probing: a.probing,
        cuts: a.cuts,
        symmetry: a.symmetry,
        gomory_cuts: a.gomory_cuts,
        decompose: a.decompose,
        priority_cuts: a.priority_cuts,
        max_cuts_per_root: a.max_cuts_per_root,
        resolve: a.resolve,
        ..FlowOptions::default()
    }
}

fn target(a: &Args) -> Target {
    Target {
        k: a.k,
        ..Target::default()
    }
}

fn run() -> Result<(), Box<dyn Error>> {
    // Flags may appear anywhere; the first positional is the subcommand.
    let mut a = parse_args(std::env::args().skip(1)).map_err(|e| -> Box<dyn Error> { e.into() })?;
    if a.positional.is_empty() {
        eprintln!(
            "usage: pipemap <info|dot|schedule|verilog|lint|analyze|verify|bench|run|sweep> ..."
        );
        return Err("missing subcommand".into());
    }
    let cmd = a.positional.remove(0);

    // `report` on a flow input needs the trace even without --trace; a
    // `report` on an existing Chrome JSON re-ingests it instead.
    let report_run = cmd == "report" && a.positional.first().is_some_and(|p| !p.ends_with(".json"));
    let tracing = a.trace.is_some() || a.metrics || report_run;
    let metering = a.metrics_out.is_some() || a.metrics_prom.is_some();
    if tracing {
        pipemap::obs::enable();
    }
    if metering {
        pipemap::obs::metrics::enable();
    }
    let result = dispatch(&cmd, &a);
    if metering {
        pipemap::obs::metrics::disable();
        let snap = pipemap::obs::metrics::snapshot();
        if let Some(path) = &a.metrics_out {
            std::fs::write(path, pipemap::obs::metrics::to_json(&snap))?;
            eprintln!("metrics: {} metric(s) -> {path}", snap.len());
        }
        if let Some(path) = &a.metrics_prom {
            std::fs::write(path, pipemap::obs::metrics::to_prometheus(&snap))?;
            eprintln!(
                "metrics: {} metric(s) -> {path} (Prometheus text)",
                snap.len()
            );
        }
    }
    if tracing {
        pipemap::obs::disable();
        let trace = pipemap::obs::take();
        if let Some(path) = &a.trace {
            std::fs::write(path, pipemap::obs::chrome::to_chrome_trace(&trace))?;
            eprintln!(
                "trace: {} event(s) -> {path} (open in Perfetto or chrome://tracing)",
                trace.events.len()
            );
        }
        if a.metrics {
            eprint!("{}", pipemap::obs::tree::phase_tree(&trace).render());
        }
        if report_run && result.is_ok() {
            emit_report(&trace, &a)?;
        }
    }
    result
}

/// Build the [`SolveReport`](pipemap::obs::report::SolveReport) from a
/// captured trace and write it as asked: human text to stdout (or the
/// JSON twin with `--json`), plus `--report-out FILE` for the twin.
fn emit_report(trace: &pipemap::obs::Trace, a: &Args) -> Result<(), Box<dyn Error>> {
    let report = pipemap::obs::report::build(trace);
    if let Some(path) = &a.report_out {
        std::fs::write(path, report.to_json())?;
        eprintln!("report: -> {path}");
    }
    if a.json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }
    Ok(())
}

fn dispatch(cmd: &str, a: &Args) -> Result<(), Box<dyn Error>> {
    match cmd {
        "info" => {
            let path = a.positional.first().ok_or("info needs a .pmir file")?;
            let dfg = load(path)?;
            let s = dfg.stats();
            println!("graph     : {}", dfg.name());
            println!("nodes     : {}", s.nodes);
            println!("lut ops   : {}", s.lut_ops);
            println!("black box : {}", s.black_box_ops);
            println!("inputs    : {}", s.inputs);
            println!("outputs   : {}", s.outputs);
            println!(
                "edges     : {} ({} loop-carried)",
                s.edges, s.loop_carried_edges
            );
            println!("memories  : {}", dfg.memories().len());
        }
        "dot" => {
            let path = a.positional.first().ok_or("dot needs a .pmir file")?;
            let dfg = load(path)?;
            let r = run_flow(&dfg, &target(a), a.flow, &options(a))?;
            let sched = r.implementation.schedule.clone();
            print!("{}", to_dot(&r.dfg, Some(&|v| sched.cycle(v))));
        }
        "schedule" => {
            let path = a.positional.first().ok_or("schedule needs a .pmir file")?;
            let dfg = load(path)?;
            let t = target(a);
            let r = run_flow(&dfg, &t, a.flow, &options(a))?;
            print!("{}", schedule_report(&r.dfg, &t, &r.implementation));
            let ins = InputStreams::random(&r.dfg, 16, 1);
            verify_functional(&r.dfg, &t, &r.implementation, &ins, 16)?;
            println!("functional check: ok (16 iterations vs reference interpreter)");
            if let Some(p) = &r.analysis {
                println!(
                    "analyze pre-pass: {} rewrite(s) | nodes {} -> {} | {} bit(s) pruned \
                     | cuts {} -> {}",
                    p.rewrites,
                    p.nodes_before,
                    p.nodes_after,
                    p.bits_pruned,
                    p.cuts_before,
                    p.cuts_after
                );
            }
            if let Some(s) = &r.milp {
                println!(
                    "solver: {} in {:.2?} | {} B&B nodes | {} vars | {} rows | {} job(s)",
                    s.status, s.solve_time, s.nodes, s.variables, s.constraints, s.solver.jobs
                );
                println!(
                    "        cuts: {} enumerated | {} pruned by priority-cut analysis | {} in model",
                    s.cuts_enumerated, s.cuts_pruned, s.total_cuts
                );
                let hit = s
                    .solver
                    .warm_hit_rate()
                    .map_or("-".to_string(), |h| format!("{:.1}%", h * 100.0));
                println!(
                    "        {} simplex iters | warm starts {}/{} ({hit}) | presolve \
                     -{} rows, {} cols fixed, {} bounds tightened, {} coeffs reduced",
                    s.lp_iterations,
                    s.solver.warm_hits,
                    s.solver.warm_attempts,
                    s.solver.presolve_rows_removed,
                    s.solver.presolve_cols_fixed,
                    s.solver.presolve_bounds_tightened,
                    s.solver.presolve_coeffs_reduced
                );
                println!(
                    "        analysis: {} probed -> {} fixing(s), {} implication(s) \
                     | {} clique(s) -> {} clique + {} cover + {} implication cut(s) in {} round(s), {} aged out \
                     | {} orbit(s) -> {} orbital + {} implied fixing(s) in tree",
                    s.solver.probe_vars,
                    s.solver.probe_fixings,
                    s.solver.probe_implications,
                    s.solver.clique_table,
                    s.solver.clique_cuts,
                    s.solver.cover_cuts,
                    s.solver.implication_cuts,
                    s.solver.cut_rounds,
                    s.solver.cuts_aged_out,
                    s.solver.symmetry_orbits,
                    s.solver.orbital_fixings,
                    s.solver.implication_fixings
                );
                if s.solver.gomory_cuts > 0 || s.subproblems_solved > 0 {
                    println!(
                        "        gomory: {} cut(s) | decompose: {} subproblem(s) -> {} \
                         stitched incumbent(s) | incumbent from {}",
                        s.solver.gomory_cuts,
                        s.subproblems_solved,
                        s.stitched_incumbents,
                        s.incumbent_source
                    );
                }
                if s.status == pipemap::milp::Status::TimedOut {
                    let gap = pipemap::milp::relative_gap(s.objective, s.best_bound)
                        .map_or("-".to_string(), |g| format!("{:.2}%", g * 100.0));
                    println!(
                        "        timed out: incumbent {:.4} | bound {:.4} | relative gap {gap}",
                        s.objective, s.best_bound
                    );
                }
            }
        }
        "verilog" => {
            let path = a.positional.first().ok_or("verilog needs a .pmir file")?;
            let dfg = load(path)?;
            let t = target(a);
            let r = run_flow(&dfg, &t, a.flow, &options(a))?;
            print!("{}", to_verilog(&r.dfg, &t, &r.implementation, &a.module)?);
        }
        "lint" => {
            if a.codes {
                println!("{:<6} {:<8} summary", "code", "severity");
                for &c in Code::ALL {
                    println!(
                        "{:<6} {:<8} {}",
                        c.as_str(),
                        c.severity().to_string(),
                        c.summary()
                    );
                }
                return Ok(());
            }
            let path = a.positional.first().ok_or("lint needs a .pmir file")?;
            let src = std::fs::read_to_string(path)?;
            let (mut ds, _) = lint_text(&src);
            ds.sort();
            if a.json {
                println!("{}", ds.render_json());
            } else if ds.is_empty() {
                println!("{path}: clean ({} lints checked)", Code::ALL.len());
            } else {
                print!("{}", ds.render_human(path));
            }
            if ds.has_errors() || (a.deny_warnings && ds.warning_count() > 0) {
                return Err(format!(
                    "{} error(s), {} warning(s)",
                    ds.error_count(),
                    ds.warning_count()
                )
                .into());
            }
        }
        "analyze" => {
            let path = a.positional.first().ok_or("analyze needs a .pmir file")?;
            let dfg = load(path)?;
            if a.dot {
                let analysis = Analysis::run(&dfg)?;
                print!(
                    "{}",
                    to_dot_styled(&dfg, None, Some(&|v| analysis.dot_style(&dfg, v)))
                );
                return Ok(());
            }
            let report = analyze_report(&dfg, &target(a), a.ii)?;
            if a.json {
                println!("{}", report.render_json());
            } else {
                print!("{}", report.render_human());
            }
        }
        "verify" => {
            let path = a.positional.first().ok_or("verify needs a .pmir file")?;
            let src = std::fs::read_to_string(path)?;
            let (mut ds, dfg) = lint_text(&src);
            if let Some(dfg) = dfg.filter(|_| !ds.has_errors()) {
                let t = target(a);
                let opts = options(a);
                // `run_all_flows` runs the three flows concurrently when
                // --jobs > 1; results keep Flow::ALL order either way.
                let results = pipemap::core::run_all_flows(&dfg, &t, &opts)?;
                let flows: Vec<(&str, &Dfg, _)> = results
                    .iter()
                    .map(|r| (r.flow.label(), &r.dfg, &r.implementation))
                    .collect();
                ds.merge(check_flows_with_graphs(
                    &dfg,
                    &t,
                    &flows,
                    &FlowCheckOptions::default(),
                ));
                // P06xx: run the certified priority-cut pruning exactly
                // as the MILP-map flow would and audit every certificate.
                let prune = pipemap::cuts::priority_cuts(
                    &dfg,
                    &pipemap::cuts::CutConfig::for_target(&t),
                    &pipemap::cuts::PruneConfig {
                        max_cuts_per_root: a.max_cuts_per_root,
                        ..pipemap::cuts::PruneConfig::default()
                    },
                );
                ds.merge(pipemap::verify::check_priority_cuts(&dfg, &prune));
            }
            ds.sort();
            if a.json {
                println!("{}", ds.render_json());
            } else if ds.is_empty() {
                println!(
                    "{path}: all {} flows verifier-clean and simulation-equivalent; \
                     priority-cut certificates audit clean",
                    Flow::ALL.len()
                );
            } else {
                print!("{}", ds.render_human(path));
            }
            if ds.has_errors() || (a.deny_warnings && ds.warning_count() > 0) {
                return Err(format!(
                    "{} error(s), {} warning(s)",
                    ds.error_count(),
                    ds.warning_count()
                )
                .into());
            }
        }
        "bench" | "run" => {
            let name = a.positional.first().ok_or("bench needs a benchmark name")?;
            let bench = pipemap::bench_suite::by_name(name)
                .ok_or("unknown benchmark (CLZ, XORR, GFMUL, CORDIC, MT, AES, RS, DR, GSM)")?;
            println!(
                "{:<10} {:>7} {:>6} {:>6} {:>6} {:>4} {:>10} {:>9} {:>9}",
                "method", "CP(ns)", "LUT", "FF", "depth", "II", "wall", "nodes", "warm-hit"
            );
            for flow in Flow::EXTENDED {
                let started = std::time::Instant::now();
                let r = run_flow(&bench.dfg, &bench.target, flow, &options(a))?;
                let wall = started.elapsed();
                let (nodes, hit) = r.milp.as_ref().map_or_else(
                    || ("-".to_string(), "-".to_string()),
                    |s| {
                        (
                            s.nodes.to_string(),
                            s.solver
                                .warm_hit_rate()
                                .map_or("-".to_string(), |h| format!("{:.0}%", h * 100.0)),
                        )
                    },
                );
                println!(
                    "{:<10} {:>7.2} {:>6} {:>6} {:>6} {:>4} {:>10} {:>9} {:>9}",
                    r.flow.label(),
                    r.qor.cp_ns,
                    r.qor.luts,
                    r.qor.ffs,
                    r.qor.depth,
                    r.ii,
                    format!("{wall:.2?}"),
                    nodes,
                    hit
                );
            }
        }
        "sweep" => {
            let name = a
                .positional
                .first()
                .ok_or("sweep needs a .pmir file or a benchmark name")?;
            let (dfg, t) = if std::path::Path::new(name).exists() {
                (load(name)?, target(a))
            } else {
                let b = pipemap::bench_suite::by_name(name)
                    .ok_or("sweep needs a .pmir file or a known benchmark name")?;
                (b.dfg, b.target)
            };
            let mut cfg = pipemap::core::SweepConfig {
                time_limit: Duration::from_secs(a.limit),
                jobs: a.jobs,
                incremental: a.resolve,
                audit: a.audit,
                ..pipemap::core::SweepConfig::default()
            };
            if let Some(l) = &a.ii_list {
                cfg.ii_values = l.clone();
            }
            if let Some(l) = &a.k_list {
                cfg.k_values = l.clone();
            }
            let rep = pipemap::core::run_sweep(&dfg, &t, &cfg)?;
            println!(
                "{:<3} {:>3} {:>2} {:>6} {:>6} {:>6} {:>9} {:>12} {:>10} {:>5} {:>5}",
                "ii",
                "ach",
                "k",
                "alpha",
                "beta",
                "gamma",
                "status",
                "objective",
                "wall",
                "warm",
                "audit"
            );
            for p in &rep.points {
                println!(
                    "{:<3} {:>3} {:>2} {:>6.2} {:>6.2} {:>6.2} {:>9} {:>12.4} {:>10} {:>5} {:>5}",
                    p.ii,
                    p.ii_achieved,
                    p.k,
                    p.alpha,
                    p.beta,
                    p.gamma,
                    p.status.to_string(),
                    p.objective,
                    format!("{:.2?}", p.wall),
                    if p.warm_hit { "yes" } else { "no" },
                    p.audit_ok.map_or("-", |ok| if ok { "ok" } else { "FAIL" }),
                );
            }
            println!(
                "sweep: {} point(s) over {} structural base(s) in {:.2?} (+{:.2?} shared setup), mode {}",
                rep.points.len(),
                rep.contexts,
                rep.total_wall,
                rep.setup_wall,
                if a.resolve { "incremental" } else { "cold" },
            );
            if let Some(rs) = &rep.resolve {
                println!(
                    "       reuse: {} solve(s) | {} cached | {} cold | {} base(s) deduped \
                     | {} incumbent seed(s) | warm hits {}/{} \
                     | LU reused {} / refactored {} | {} frontier resume(s) ({} node(s))",
                    rs.solves,
                    rs.cached_results,
                    rs.cold_solves,
                    rep.bases_deduped,
                    rs.incumbent_seeds,
                    rs.warm_hits,
                    rs.warm_attempts,
                    rs.lu_factor_reuses,
                    rs.lu_refactors,
                    rs.frontier_resumes,
                    rs.frontier_nodes_reused
                );
            }
            if rep.audit_failures > 0 {
                return Err(format!(
                    "{} sweep point(s) diverged from the from-scratch audit",
                    rep.audit_failures
                )
                .into());
            }
        }
        "report" => {
            let input = a
                .positional
                .first()
                .ok_or("report needs a .pmir file, benchmark name, or trace.json")?;
            if input.ends_with(".json") {
                // Re-ingest a Chrome trace written by `--trace` earlier;
                // no flow runs, so the surrounding tracing harness in
                // `run` is off and the report is emitted right here.
                let text = std::fs::read_to_string(input)?;
                let trace = pipemap::obs::report::trace_from_chrome(&text)
                    .map_err(|e| format!("{input}: {e}"))?;
                emit_report(&trace, a)?;
            } else {
                // Run the flow traced; `run` takes the trace and emits
                // the report after this returns. The solved QoR goes to
                // stderr so stdout stays pure report.
                let (dfg, t) = if std::path::Path::new(input).exists() {
                    (load(input)?, target(a))
                } else {
                    let b = pipemap::bench_suite::by_name(input).ok_or(
                        "report needs a .pmir file, a known benchmark name, or a --trace JSON",
                    )?;
                    (b.dfg, b.target)
                };
                let r = run_flow(&dfg, &t, a.flow, &options(a))?;
                eprintln!(
                    "solved: {} | CP {:.2}ns | {} LUT | {} FF | II {}",
                    r.flow.label(),
                    r.qor.cp_ns,
                    r.qor.luts,
                    r.qor.ffs,
                    r.ii
                );
            }
        }
        other => {
            eprintln!("unknown subcommand `{other}`");
            return Err("unknown subcommand".into());
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
