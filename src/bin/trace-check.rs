//! `trace-check` — structural validator for the Chrome trace-event JSON
//! files `pipemap --trace` writes. Backs the CI trace-smoke job.
//!
//! ```text
//! trace-check <trace.json> [more.json ...]
//! ```
//!
//! For each file: parses the JSON, requires a `traceEvents` array whose
//! events all carry `ph`/`pid`/`tid`/`name` (and `ts` for non-metadata
//! events), and checks every `E` closes the matching `B` of the same
//! lane in LIFO order. Exits non-zero on the first invalid file.

use std::process::ExitCode;

use pipemap::obs::validate::validate_chrome_trace;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: trace-check <trace.json> [more.json ...]");
        return ExitCode::from(2);
    }
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("trace-check: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match validate_chrome_trace(&text) {
            Ok(c) => println!(
                "{path}: ok — {} event(s): {} span(s), {} instant(s), {} counter(s) \
                 on {} lane(s); max depth {}, wall {:.3} ms",
                c.events,
                c.spans,
                c.instants,
                c.counters,
                c.lanes,
                c.max_depth,
                c.wall_us as f64 / 1e3
            ),
            Err(e) => {
                eprintln!("trace-check: {path}: INVALID: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
