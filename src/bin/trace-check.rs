//! `trace-check` — structural validator for the observability artifacts
//! pipemap writes: Chrome trace-event JSON (`--trace`), the metrics
//! exposition (`--metrics-out`, schema `pipemap-metrics-v1`), and the
//! solve report (`pipemap report --report-out`, schema
//! `pipemap-solve-report-v1`). Backs the CI trace-smoke job.
//!
//! ```text
//! trace-check <artifact.json> [more.json ...]
//! ```
//!
//! Each file is dispatched on its `schema` field (no `schema` means a
//! Chrome trace). Traces must have a `traceEvents` array whose events
//! all carry `ph`/`pid`/`tid`/`name` (and `ts` for non-metadata events)
//! with every `E` closing the matching `B` of the same lane in LIFO
//! order; metrics documents must type-check with ascending histogram
//! buckets that sum to their counts; reports must carry every section
//! with phase times reconciling to the wall clock. Exits non-zero on
//! the first invalid file.

use std::process::ExitCode;

use pipemap::obs::validate::{validate_document, DocumentCheck};

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: trace-check <artifact.json> [more.json ...]");
        return ExitCode::from(2);
    }
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("trace-check: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match validate_document(&text) {
            Ok(DocumentCheck::Trace(c)) => println!(
                "{path}: ok — trace: {} event(s): {} span(s), {} instant(s), {} counter(s) \
                 on {} lane(s); max depth {}, wall {:.3} ms",
                c.events,
                c.spans,
                c.instants,
                c.counters,
                c.lanes,
                c.max_depth,
                c.wall_us as f64 / 1e3
            ),
            Ok(DocumentCheck::Metrics(metrics, hists)) => {
                println!("{path}: ok — metrics: {metrics} metric(s), {hists} histogram(s)")
            }
            Ok(DocumentCheck::Report(phases, features)) => {
                println!("{path}: ok — solve report: {phases} phase(s), {features} feature(s)")
            }
            Err(e) => {
                eprintln!("trace-check: {path}: INVALID: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
