//! The `pipemap analyze` report: facts, simplification savings, and the
//! downstream effect on cut-database and MILP-model size.
//!
//! Shared by the CLI subcommand and the acceptance tests so both observe
//! the exact same numbers.

use std::fmt::Write as _;

use pipemap_analyze::{simplify_with, Analysis, SimplifyStats};
use pipemap_core::schedule_baseline;
use pipemap_cuts::{CutConfig, CutDb};
use pipemap_ir::{Dfg, Op, Target};

/// One per-node fact line of the report (only nodes with something
/// proven are listed).
#[derive(Debug, Clone)]
pub struct NodeFact {
    /// Node index in the original graph.
    pub node: usize,
    /// The node's label (name or `%id`).
    pub label: String,
    /// Operation mnemonic.
    pub op: String,
    /// Word width.
    pub width: u32,
    /// MSB-first pattern: `0`/`1` known, `-` live unknown, `x` dead.
    pub pattern: String,
}

/// Everything `pipemap analyze` reports for one graph.
#[derive(Debug, Clone)]
pub struct AnalyzeReport {
    /// Graph name.
    pub graph: String,
    /// Per-node facts (nodes with at least one known or dead bit).
    pub facts: Vec<NodeFact>,
    /// Simplification statistics.
    pub stats: SimplifyStats,
    /// Number of proof-carrying rewrites.
    pub rewrites: usize,
    /// Enumerated cuts on the original graph (target K, default config).
    pub cuts_before: usize,
    /// Enumerated cuts on the simplified graph with liveness pruning.
    pub cuts_after: usize,
    /// MILP-map model variables for the original graph (`None` when the
    /// baseline scheduler finds no feasible latency to size the model).
    pub vars_before: Option<usize>,
    /// MILP-map model variables for the simplified graph.
    pub vars_after: Option<usize>,
}

impl AnalyzeReport {
    /// `true` if the pre-pass shrank the cut database or the MILP model.
    pub fn saves_anything(&self) -> bool {
        self.cuts_after < self.cuts_before
            || matches!(
                (self.vars_before, self.vars_after),
                (Some(b), Some(a)) if a < b
            )
    }

    /// Render as a JSON object (no external dependencies).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(out, "\"graph\":\"{}\"", escape(&self.graph));
        let _ = write!(
            out,
            ",\"nodes_before\":{},\"nodes_after\":{}",
            self.stats.nodes_before, self.stats.nodes_after
        );
        let _ = write!(
            out,
            ",\"rewrites\":{},\"const_folded\":{},\"forwarded\":{},\"dead_operands\":{},\
             \"narrowed\":{},\"removed\":{}",
            self.rewrites,
            self.stats.const_folded,
            self.stats.forwarded,
            self.stats.dead_operands,
            self.stats.narrowed,
            self.stats.removed
        );
        let _ = write!(
            out,
            ",\"bits_known\":{},\"bits_dead\":{},\"bits_pruned\":{}",
            self.stats.bits_known, self.stats.bits_dead, self.stats.bits_pruned
        );
        let _ = write!(
            out,
            ",\"cuts_before\":{},\"cuts_after\":{}",
            self.cuts_before, self.cuts_after
        );
        match (self.vars_before, self.vars_after) {
            (Some(b), Some(a)) => {
                let _ = write!(out, ",\"milp_vars_before\":{b},\"milp_vars_after\":{a}");
            }
            _ => {
                let _ = write!(out, ",\"milp_vars_before\":null,\"milp_vars_after\":null");
            }
        }
        out.push_str(",\"facts\":[");
        for (i, f) in self.facts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"node\":{},\"label\":\"{}\",\"op\":\"{}\",\"width\":{},\"pattern\":\"{}\"}}",
                f.node,
                escape(&f.label),
                escape(&f.op),
                f.width,
                escape(&f.pattern)
            );
        }
        out.push_str("]}");
        out
    }

    /// Render for humans.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "graph {}: {} nodes",
            self.graph, self.stats.nodes_before
        );
        if self.facts.is_empty() {
            let _ = writeln!(out, "facts: nothing proven beyond widths");
        } else {
            let _ = writeln!(out, "facts ({} nodes with proven bits):", self.facts.len());
            for f in &self.facts {
                let _ = writeln!(
                    out,
                    "  {:>4} {:<12} {:<6} w{:<3} {}",
                    format!("%{}", f.node),
                    f.label,
                    f.op,
                    f.width,
                    f.pattern
                );
            }
        }
        let _ = writeln!(
            out,
            "simplify: {} rewrite(s) ({} folded, {} forwarded, {} dead operand(s), \
             {} narrowed, {} removed), nodes {} -> {}, {} bit(s) pruned",
            self.rewrites,
            self.stats.const_folded,
            self.stats.forwarded,
            self.stats.dead_operands,
            self.stats.narrowed,
            self.stats.removed,
            self.stats.nodes_before,
            self.stats.nodes_after,
            self.stats.bits_pruned
        );
        let _ = writeln!(
            out,
            "cuts: {} -> {} (liveness-pruned enumeration)",
            self.cuts_before, self.cuts_after
        );
        match (self.vars_before, self.vars_after) {
            (Some(b), Some(a)) => {
                let _ = writeln!(out, "milp vars: {b} -> {a}");
            }
            _ => {
                let _ = writeln!(out, "milp vars: n/a (baseline schedule unavailable)");
            }
        }
        out
    }
}

/// Run the analysis + simplification and measure the downstream savings
/// for the mapping-aware MILP flow at the given II.
///
/// # Errors
///
/// Fails only if the graph does not validate.
pub fn analyze_report(
    dfg: &Dfg,
    target: &Target,
    ii: u32,
) -> Result<AnalyzeReport, pipemap_ir::IrError> {
    let analysis = Analysis::run(dfg)?;
    let out = simplify_with(dfg, &analysis)?;

    let mut facts = Vec::new();
    for (id, node) in dfg.iter() {
        if matches!(node.op, Op::Const(_)) {
            continue;
        }
        let known = analysis.fact(id).bits.known() != 0;
        let dead = analysis.dead(dfg, id) != 0;
        if known || dead {
            facts.push(NodeFact {
                node: id.index(),
                label: dfg.label(id),
                op: node.op.mnemonic().to_string(),
                width: node.width,
                pattern: analysis.pattern(dfg, id),
            });
        }
    }

    let cfg_before = CutConfig::for_target(target);
    let db_before = CutDb::enumerate(dfg, &cfg_before);
    let after_analysis = Analysis::run(&out.dfg)?;
    let cfg_after = CutConfig {
        live_bits: Some(out.dfg.node_ids().map(|v| after_analysis.live(v)).collect()),
        ..CutConfig::for_target(target)
    };
    let db_after = CutDb::enumerate(&out.dfg, &cfg_after);

    let vars = |g: &Dfg, db: &CutDb| {
        let baseline = schedule_baseline(g, target, ii, db).ok()?;
        let m = baseline.implementation.schedule.depth();
        Some(pipemap_core::debug_build_model(g, target, db, baseline.ii, m, 0.5, 0.5).num_vars())
    };
    let vars_before = vars(dfg, &db_before);
    let vars_after = vars(&out.dfg, &db_after);

    Ok(AnalyzeReport {
        graph: dfg.name().to_string(),
        facts,
        stats: out.stats,
        rewrites: out.rewrites.len(),
        cuts_before: db_before.total_cuts(),
        cuts_after: db_after.total_cuts(),
        vars_before,
        vars_after,
    })
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c => vec![c],
        })
        .collect()
}
