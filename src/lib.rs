//! # pipemap
//!
//! Area-efficient, mapping-aware pipeline synthesis for FPGA-targeted
//! high-level synthesis — a from-scratch Rust reproduction of
//! *"Area-Efficient Pipelining for FPGA-Targeted High-Level Synthesis"*
//! (R. Zhao, M. Tan, S. Dai, Z. Zhang — DAC 2015).
//!
//! Classical HLS pipeline scheduling assumes an additive delay model and
//! inserts pipeline registers that downstream LUT mapping can never
//! remove. This crate schedules and maps **simultaneously**: a word-level
//! cut enumeration (bit-level dependence tracking) feeds a mixed-integer
//! linear program that picks, for every operation, both its pipeline
//! cycle and the LUT cone that implements it, minimizing LUTs and
//! pipeline registers under a throughput (initiation interval)
//! constraint.
//!
//! The workspace is organized as one crate per subsystem, all re-exported
//! here:
//!
//! * [`ir`] — word-level CDFG, builder, device model, reference
//!   interpreter,
//! * [`analyze`] — bit-level dataflow analysis (known bits, ranges,
//!   dead-bit liveness) and proof-carrying IR simplification,
//! * [`cuts`] — K-feasible word-level cut enumeration (paper §3.1),
//! * [`milp`] — a sparse revised-simplex + branch-and-bound MILP solver
//!   (the CPLEX stand-in),
//! * [`netlist`] — cover legality, LUT/FF/CP evaluation and cycle-accurate
//!   simulation (the Vivado stand-in),
//! * [`core`] — the three scheduling flows of the paper's evaluation
//!   (heuristic baseline, MILP-base, MILP-map),
//! * [`verify`] — diagnostics-driven static verifier and lint passes
//!   (stable `P0xxx` codes) over IR, schedules, covers, and emitted RTL,
//! * [`bench_suite`] — the nine benchmarks of Table 1/2 as CDFG
//!   generators.
//!
//! ```no_run
//! use pipemap::core::{run_flow, Flow, FlowOptions};
//! use pipemap::ir::{DfgBuilder, Target};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = DfgBuilder::new("demo");
//! let x = b.input("x", 8);
//! let y = b.input("y", 8);
//! let z = b.xor(x, y);
//! b.output("z", z);
//! let dfg = b.finish()?;
//!
//! let r = run_flow(&dfg, &Target::default(), Flow::MilpMap, &FlowOptions::default())?;
//! println!("{} LUTs, {} FFs", r.qor.luts, r.qor.ffs);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod report;

pub use pipemap_analyze as analyze;
pub use pipemap_bench_suite as bench_suite;
pub use pipemap_core as core;
pub use pipemap_cuts as cuts;
pub use pipemap_ir as ir;
pub use pipemap_milp as milp;
pub use pipemap_netlist as netlist;
pub use pipemap_obs as obs;
pub use pipemap_verify as verify;
