//! Export a scheduled+mapped pipeline as structural Verilog.
//!
//! ```text
//! cargo run --release --example emit_verilog -- [BENCH]
//! ```

use std::error::Error;
use std::time::Duration;

use pipemap::bench_suite::by_name;
use pipemap::core::{run_flow, Flow, FlowOptions};
use pipemap::netlist::{schedule_report, to_verilog};

fn main() -> Result<(), Box<dyn Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "AES".into());
    let bench = by_name(&name).ok_or("unknown benchmark name")?;
    let opts = FlowOptions {
        time_limit: Duration::from_secs(15),
        ..FlowOptions::default()
    };
    let r = run_flow(&bench.dfg, &bench.target, Flow::MilpMap, &opts)?;

    println!("// ---- schedule report -------------------------------------");
    for line in schedule_report(&bench.dfg, &bench.target, &r.implementation).lines() {
        println!("// {line}");
    }
    println!();
    let rtl = to_verilog(
        &bench.dfg,
        &bench.target,
        &r.implementation,
        &format!("{}_pipeline", name.to_lowercase()),
    )?;
    println!("{rtl}");
    Ok(())
}
