//! Quickstart: build a tiny kernel, run the mapping-aware flow, inspect
//! the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::error::Error;

use pipemap::core::{run_flow, Flow, FlowOptions};
use pipemap::ir::{DfgBuilder, InputStreams, Target};
use pipemap::netlist::verify_functional;

fn main() -> Result<(), Box<dyn Error>> {
    // A small logic kernel: out = ((a ^ b) & c) | (a >> 2).
    let mut b = DfgBuilder::new("quickstart");
    let a = b.input("a", 8);
    let x = b.input("b", 8);
    let c = b.input("c", 8);
    let t1 = b.xor(a, x);
    let t2 = b.and(t1, c);
    let t3 = b.shr(a, 2);
    let out = b.or(t2, t3);
    b.output("out", out);
    let dfg = b.finish()?;

    println!("kernel:\n{dfg}\n");

    // Schedule + map for a default 4-LUT device at a 10 ns clock, II = 1.
    let target = Target::default();
    let result = run_flow(&dfg, &target, Flow::MilpMap, &FlowOptions::default())?;

    println!(
        "mapping-aware result: {} LUTs, {} FFs, CP {:.2} ns, {} pipeline stage(s) at II={}",
        result.qor.luts, result.qor.ffs, result.qor.cp_ns, result.qor.depth, result.ii
    );
    if let Some(stats) = &result.milp {
        println!(
            "solver: {} in {:?} ({} B&B nodes, {} LP iterations)",
            stats.status, stats.solve_time, stats.nodes, stats.lp_iterations
        );
    }

    // Every implementation can be simulated cycle-accurately and checked
    // against the reference interpreter.
    let ins = InputStreams::random(&dfg, 16, 42);
    verify_functional(&dfg, &target, &result.implementation, &ins, 16)?;
    println!("cycle-accurate simulation matches the reference interpreter");
    Ok(())
}
