//! The paper's Figure 1 walkthrough: the Reed-Solomon encoder kernel
//! scheduled with and without mapping awareness.
//!
//! ```text
//! cargo run --release --example reed_solomon
//! ```

use std::error::Error;

use pipemap::bench_suite::rs_encoder_fig1;
use pipemap::core::{run_flow, Flow, FlowOptions};
use pipemap::cuts::{CutConfig, CutDb};
use pipemap::ir::{InputStreams, Target};
use pipemap::netlist::verify_functional;

fn main() -> Result<(), Box<dyn Error>> {
    let (dfg, _nodes) = rs_encoder_fig1();
    // The paper's pedagogical device: 4-input LUTs, 5 ns clock, every
    // logic op or LUT costs 2 ns.
    let target = Target::fig1();

    println!("Reed-Solomon encoder kernel (paper Fig. 1/2):\n{dfg}\n");

    // §3.1: word-level cut enumeration with bit-level dependence tracking.
    let db = CutDb::enumerate(&dfg, &CutConfig::for_target(&target));
    println!("enumerated cuts ({} total):", db.total_cuts());
    print!("{}", db.dump(&dfg));
    println!();

    // The two flows of Fig. 1.
    let opts = FlowOptions::default();
    let additive = run_flow(&dfg, &target, Flow::HlsTool, &opts)?;
    let mapped = run_flow(&dfg, &target, Flow::MilpMap, &opts)?;

    println!(
        "additive schedule (Fig. 1a): {} stages, {} LUTs, {} FFs",
        additive.qor.depth, additive.qor.luts, additive.qor.ffs
    );
    println!(
        "mapping-aware schedule (Fig. 1b): {} stage(s), {} LUTs, {} FFs",
        mapped.qor.depth, mapped.qor.luts, mapped.qor.ffs
    );
    assert!(mapped.qor.depth < additive.qor.depth);

    // Both are real pipelines: simulate them against the interpreter.
    let ins = InputStreams::random(&dfg, 50, 1);
    verify_functional(&dfg, &target, &additive.implementation, &ins, 50)?;
    verify_functional(&dfg, &target, &mapped.implementation, &ins, 50)?;
    println!("\nboth pipelines verified against the reference interpreter");
    Ok(())
}
