//! Build a custom kernel with a loop-carried recurrence and black-box
//! memory, pipeline it, and verify it end to end — the full user journey
//! on the public API.
//!
//! The kernel is a toy stream scrambler:
//!
//! ```text
//! key   = rom[ctr]                 // black-box ROM read
//! mixed = (sample ^ key) + state'  // state' = state one iteration back
//! state = mixed rotated left by 3
//! out   = mixed
//! ```
//!
//! ```text
//! cargo run --release --example custom_kernel
//! ```

use std::error::Error;

use pipemap::core::{run_flow, Flow, FlowOptions};
use pipemap::ir::{DfgBuilder, InputStreams, Target};
use pipemap::netlist::{verify_functional, Qor};

fn main() -> Result<(), Box<dyn Error>> {
    const W: u32 = 16;
    let mut b = DfgBuilder::new("scrambler");
    let sample = b.input("sample", W);
    let ctr = b.input("ctr", 4);
    let rom = b.add_memory(
        "keys",
        W,
        (0..16u64).map(|i| (i * 0x9E37 + 0x1234) & 0xFFFF).collect(),
    );
    let key = b.load(rom, ctr);
    let xored = b.xor(sample, key);

    // Loop-carried state, rotated each iteration.
    let state_prev = b.placeholder(W);
    let mixed = b.add(xored, state_prev);
    let hi = b.shl(mixed, 3);
    let lo = b.shr(mixed, W - 3);
    let state = b.or(hi, lo);
    b.bind(state_prev, state, 1)?;
    b.set_init_value(state, 0xBEEF);

    b.output("scrambled", mixed);
    let dfg = b.finish()?;
    println!("custom kernel:\n{dfg}\n");

    // Software model for a few iterations, to show the graph means what
    // we think it means.
    let samples: Vec<u64> = vec![0x1111, 0x2222, 0x3333, 0x4444];
    let ctrs: Vec<u64> = vec![0, 1, 2, 3];
    let mut state_sw: u16 = 0xBEEF;
    let mut expected = Vec::new();
    for (s, c) in samples.iter().zip(&ctrs) {
        let key = (c * 0x9E37 + 0x1234) & 0xFFFF;
        let mixed = ((*s as u16) ^ (key as u16)).wrapping_add(state_sw);
        state_sw = mixed.rotate_left(3);
        expected.push(u64::from(mixed));
    }

    let mut ins = InputStreams::new();
    ins.set(dfg.inputs()[0], samples);
    ins.set(dfg.inputs()[1], ctrs);
    let trace = pipemap::ir::execute(&dfg, &ins, 4)?;
    let out = dfg.outputs()[0];
    let got: Vec<u64> = (0..4).map(|k| trace.value(k, out)).collect();
    assert_eq!(got, expected, "interpreter matches the software model");
    println!("interpreter matches the hand-written software model: {got:x?}\n");

    // Pipeline it three ways and compare.
    let target = Target::default();
    let opts = FlowOptions::default();
    let ver_ins = InputStreams::random(&dfg, 40, 77);
    for flow in Flow::ALL {
        let r = run_flow(&dfg, &target, flow, &opts)?;
        verify_functional(&dfg, &target, &r.implementation, &ver_ins, 40)?;
        let Qor {
            luts,
            ffs,
            cp_ns,
            depth,
            ii,
            ..
        } = r.qor;
        println!(
            "{:<10} -> {luts:>3} LUTs, {ffs:>3} FFs, CP {cp_ns:>5.2} ns, depth {depth}, II {ii}",
            r.flow.label()
        );
    }
    println!("\nall flows verified cycle-accurately against the interpreter");
    Ok(())
}
