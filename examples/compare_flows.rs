//! Compare the paper's three Table 1 flows — plus the future-work
//! mapping-aware list-scheduling heuristic — on one benchmark.
//!
//! ```text
//! cargo run --release --example compare_flows -- [BENCH] [LIMIT_SECS]
//! ```
//!
//! `BENCH` is one of CLZ, XORR, GFMUL, CORDIC, MT, AES, RS, DR, GSM
//! (default GFMUL).

use std::error::Error;
use std::time::Duration;

use pipemap::bench_suite::by_name;
use pipemap::core::{run_flow, Flow, FlowOptions};
use pipemap::ir::InputStreams;
use pipemap::netlist::verify_functional;
use pipemap::verify::{check_flows, FlowCheckOptions};

fn main() -> Result<(), Box<dyn Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "GFMUL".into());
    let limit = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let bench = by_name(&name).ok_or("unknown benchmark name")?;
    let stats = bench.dfg.stats();
    println!(
        "{} — {} ({}): {} nodes, {} LUT ops, {} black boxes\n",
        bench.name,
        bench.description,
        bench.domain,
        stats.nodes,
        stats.lut_ops,
        stats.black_box_ops
    );

    let opts = FlowOptions {
        time_limit: Duration::from_secs(limit),
        ..FlowOptions::default()
    };
    let ins = InputStreams::random(&bench.dfg, 32, 9);
    println!(
        "{:<10} {:>7} {:>6} {:>6} {:>6} {:>4}",
        "method", "CP(ns)", "LUT", "FF", "depth", "II"
    );
    let mut results = Vec::new();
    for flow in Flow::EXTENDED {
        let r = run_flow(&bench.dfg, &bench.target, flow, &opts)?;
        verify_functional(&bench.dfg, &bench.target, &r.implementation, &ins, 32)?;
        println!(
            "{:<10} {:>7.2} {:>6} {:>6} {:>6} {:>4}",
            r.flow.label(),
            r.qor.cp_ns,
            r.qor.luts,
            r.qor.ffs,
            r.qor.depth,
            r.ii
        );
        if let Some(s) = &r.milp {
            println!(
                "           ({} in {:?}, {} nodes, {} vars, {} rows, {} cuts)",
                s.status, s.solve_time, s.nodes, s.variables, s.constraints, s.total_cuts
            );
        }
        results.push(r);
    }

    // Every flow output must also be clean under the full static verifier
    // (legality, QoR recount, RTL lint, differential simulation).
    let labeled: Vec<(&str, _)> = results
        .iter()
        .map(|r| (r.flow.label(), &r.implementation))
        .collect();
    let ds = check_flows(
        &bench.dfg,
        &bench.target,
        &labeled,
        &FlowCheckOptions::default(),
    );
    if ds.has_errors() {
        eprintln!("{}", ds.render_human(bench.name));
        return Err(format!("verifier found {} error(s)", ds.error_count()).into());
    }
    println!(
        "\nall {} implementations verifier-clean ({} warning(s)) and \
         equivalent to the reference interpreter",
        labeled.len(),
        ds.warning_count()
    );
    Ok(())
}
